//! Graph construction: pair enumeration strategies and (optionally parallel) pairwise diffing.
//!
//! Construction is defined *incrementally*: appending query `j` to a log compares it against
//! the predecessors the [`WindowStrategy`] admits (its `j - 1` predecessors for
//! [`WindowStrategy::AllPairs`], the previous `w - 1` for a sliding window), and appends the
//! resulting diff records and edge to the growing graph.  A batch [`GraphBuilder::build`] is
//! exactly the fold of [`GraphBuilder::extend`] over the log, so a streaming session that
//! appends queries one at a time produces a graph byte-identical to a one-shot build of the
//! same prefix — the invariant `pi-core`'s `Session` is built on.

use crate::graph::{Edge, GraphStats, InteractionGraph, IntoQueryLog, QueryLog};
use pi_ast::Node;
use pi_diff::{extract_diffs, AncestorPolicy, DiffRecord, DiffStore};
use std::ops::Range;

/// Which query pairs are compared when building the interaction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowStrategy {
    /// Compare every pair of queries (`O(|Q|²)` alignments) — the unoptimised baseline.
    AllPairs,
    /// Compare only queries within a sliding window of the given size over the log order
    /// (§6.1).  A window of 2 compares consecutive queries only.
    ///
    /// Prefer constructing this through [`WindowStrategy::sliding`], which normalises the
    /// window size.  A degenerate `Sliding(w)` with `w < 2` is still accepted and clamped to
    /// 2 wherever pairs are enumerated, but new code should not rely on that clamp — it
    /// exists only so that historical configurations keep working.
    Sliding(usize),
}

impl WindowStrategy {
    /// A sliding window of size `w`, normalised.
    ///
    /// A window below 2 cannot compare anything (a pair needs two queries), so `w < 2` is
    /// normalised to 2 — the paper's minimum, which compares consecutive queries only.  This
    /// constructor makes the degenerate case explicit at construction time instead of
    /// silently clamping deep inside pair enumeration.
    pub fn sliding(w: usize) -> Self {
        WindowStrategy::Sliding(w.max(2))
    }

    /// The `j` partners compared with query `i` (always `j > i`) in a log of `n` queries.
    pub fn row_pairs(self, i: usize, n: usize) -> Range<usize> {
        match self {
            WindowStrategy::AllPairs => (i + 1)..n,
            WindowStrategy::Sliding(w) => (i + 1)..n.min(i + w.max(2)),
        }
    }

    /// The predecessors `i` an *appended* query `j` is compared against (always `i < j`).
    ///
    /// This is the adjoint of [`WindowStrategy::row_pairs`]: `i ∈ prev_pairs(j)` exactly when
    /// `j ∈ row_pairs(i, j + 1)`.  It is the unit of incremental construction — when a log
    /// grows by one query, these are precisely the new alignments to run, and for a sliding
    /// window there are at most `w - 1` of them regardless of how long the log already is.
    pub fn prev_pairs(self, j: usize) -> Range<usize> {
        match self {
            WindowStrategy::AllPairs => 0..j,
            WindowStrategy::Sliding(w) => j.saturating_sub(w.max(2) - 1)..j,
        }
    }

    /// Enumerates the `(i, j)` pairs (with `i < j`) this strategy compares for a log of
    /// `n` queries, in *append order*: all partners of query 1, then of query 2, and so on —
    /// the order in which a streaming ingest discovers them.
    ///
    /// Lazily: `AllPairs` over a large log never materialises its `O(n²)` pair list.
    pub fn pairs(self, n: usize) -> impl Iterator<Item = (usize, usize)> {
        (0..n).flat_map(move |j| self.prev_pairs(j).map(move |i| (i, j)))
    }

    /// The exact number of pairs [`WindowStrategy::pairs`] yields, in closed form.
    pub fn pair_count(self, n: usize) -> usize {
        match self {
            WindowStrategy::AllPairs => n * n.saturating_sub(1) / 2,
            WindowStrategy::Sliding(w) => {
                // Each row i contributes min(k, (n-1) - i) pairs, where k is the max offset.
                let k = w.max(2) - 1;
                let m = n.saturating_sub(1);
                if m <= k {
                    m * (m + 1) / 2
                } else {
                    k * (m - k) + k * (k + 1) / 2
                }
            }
        }
    }
}

/// The growable state behind an incremental graph build: the log ingested so far, the
/// append-only [`DiffStore`], and the edges discovered per appended query.
///
/// Grown one query at a time with [`GraphBuilder::extend`]; frozen into an
/// [`InteractionGraph`] with [`GraphAccumulator::to_graph`] (non-destructive, for streaming
/// snapshots) or [`GraphAccumulator::into_graph`] (consuming, for one-shot builds).  Because
/// the store is append-only, every `DiffId` handed out while extending stays valid — and
/// identical — across all later snapshots.
#[derive(Debug, Clone, Default)]
pub struct GraphAccumulator {
    pub(crate) queries: Vec<Node>,
    pub(crate) store: DiffStore,
    pub(crate) edges: Vec<Edge>,
}

impl GraphAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries ingested so far.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no query has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries ingested so far, in append order.
    pub fn queries(&self) -> &[Node] {
        &self.queries
    }

    /// The diff records accumulated so far.
    pub fn store(&self) -> &DiffStore {
        &self.store
    }

    /// The edges accumulated so far.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Summary statistics of the graph accumulated so far.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            queries: self.queries.len(),
            edges: self.edges.len(),
            diff_records: self.store.len(),
            distinct_paths: self.store.partition_by_path().len(),
        }
    }

    /// Freezes the current state into an [`InteractionGraph`] without consuming the
    /// accumulator: the log is cloned into a fresh shared allocation, the store and edges
    /// are cloned as-is (record subtrees are `Arc`-shared, so this copies pointers, not
    /// trees).
    pub fn to_graph(&self) -> InteractionGraph {
        InteractionGraph::from_parts(
            self.queries.as_slice(),
            self.store.clone(),
            self.edges.clone(),
        )
    }

    /// Consumes the accumulator, moving its state into an [`InteractionGraph`].
    pub fn into_graph(self) -> InteractionGraph {
        InteractionGraph::from_parts(self.queries, self.store, self.edges)
    }
}

/// Builds [`InteractionGraph`]s from parsed query logs.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    window: WindowStrategy,
    policy: AncestorPolicy,
    parallel: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder {
            window: WindowStrategy::Sliding(2),
            policy: AncestorPolicy::LcaPruned,
            parallel: false,
        }
    }
}

impl GraphBuilder {
    /// A builder with the paper's recommended defaults (window = 2, LCA pruning on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pair enumeration strategy.
    pub fn window(mut self, window: WindowStrategy) -> Self {
        self.window = window;
        self
    }

    /// Sets the ancestor materialisation policy.
    pub fn policy(mut self, policy: AncestorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables multi-threaded pairwise diffing.
    ///
    /// On a single-core host this is a no-op: the builder falls back to the serial path, so
    /// `parallel(true)` is never slower than serial there.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Appends one query to an incrementally built graph, running only the new alignments
    /// the window strategy admits ([`WindowStrategy::prev_pairs`]) and appending their
    /// records to the accumulator's store at stable `DiffId` offsets.  Returns the appended
    /// query's log index.
    ///
    /// Folding `extend` over a log yields the same accumulator state as a one-shot
    /// [`GraphBuilder::build`] of that log — same edges, same records, same ids, in the same
    /// order.
    pub fn extend(&self, acc: &mut GraphAccumulator, query: Node) -> usize {
        self.extend_batch(acc, std::iter::once(query)).start
    }

    /// Appends many queries at once, returning the range of their log indices.
    ///
    /// Equivalent to (and byte-identical with) calling [`GraphBuilder::extend`] per query,
    /// but when the builder is parallel and the batch brings enough new alignments, they are
    /// fanned out across cores — this is how the one-shot pipeline entry points keep their
    /// multi-core mining while being wrappers over a streaming session.
    pub fn extend_batch(
        &self,
        acc: &mut GraphAccumulator,
        queries: impl IntoIterator<Item = Node>,
    ) -> Range<usize> {
        let start = acc.queries.len();
        acc.queries.extend(queries);
        let end = acc.queries.len();
        let new_pairs = self.window.pair_count(end) - self.window.pair_count(start);
        // The fan-out is row-granular, so a single appended row can never parallelise —
        // don't pay the thread-scope overhead for it (the common per-query `extend` case).
        if self.parallel && end - start > 1 && available_cores() > 1 && new_pairs > 32 {
            for (i, j, records) in self.diff_pairs_parallel(&acc.queries, start..end) {
                append_pair(&mut acc.store, &mut acc.edges, i, j, records);
            }
        } else {
            for j in start..end {
                for i in self.window.prev_pairs(j) {
                    let records =
                        extract_diffs(&acc.queries[i], &acc.queries[j], i, j, self.policy);
                    append_pair(&mut acc.store, &mut acc.edges, i, j, records);
                }
            }
        }
        start..end
    }

    /// Builds the interaction graph for a log of parsed queries.
    ///
    /// The log is taken as (or converted into) a [`QueryLog`], so graphs built from an
    /// existing `Arc`'d log share it instead of cloning every query.  The result is
    /// identical to folding [`GraphBuilder::extend`] over the log — pairs are diffed in
    /// append order — the parallel path only computes the alignments concurrently before
    /// assembling them in that same order.
    pub fn build(&self, queries: impl IntoQueryLog) -> InteractionGraph {
        let queries: QueryLog = queries.into_query_log();
        let n = queries.len();
        let mut store = DiffStore::new();
        let mut edges = Vec::new();
        if self.parallel && available_cores() > 1 && self.window.pair_count(n) > 32 {
            for (i, j, records) in self.diff_pairs_parallel(&queries, 0..n) {
                append_pair(&mut store, &mut edges, i, j, records);
            }
        } else {
            for j in 0..n {
                for i in self.window.prev_pairs(j) {
                    let records = extract_diffs(&queries[i], &queries[j], i, j, self.policy);
                    append_pair(&mut store, &mut edges, i, j, records);
                }
            }
        }
        InteractionGraph::from_parts(queries, store, edges)
    }

    /// Fans pairwise diffing out over the available cores with scoped threads, for the
    /// append-order rows `rows` (query `j` paired with its admitted predecessors) of a log.
    ///
    /// The row range is cut into small chunks (4 per worker) and exactly `threads` workers
    /// each process every `threads`-th chunk — the stride balances the triangular AllPairs
    /// workload (late queries have more predecessors than early ones) without
    /// oversubscribing the CPU.  Workers collect results per chunk, and the chunks are
    /// re-assembled in append order afterwards, so the output is *identical* to the serial
    /// enumeration — no shared mutable state, no lock contention.
    fn diff_pairs_parallel(
        &self,
        queries: &[Node],
        rows: Range<usize>,
    ) -> Vec<(usize, usize, Vec<DiffRecord>)> {
        let (rows_start, rows_end) = (rows.start, rows.end);
        let m = rows_end - rows_start;
        let threads = available_cores().min(m.max(1));
        let chunk = m.div_ceil(threads * 4).max(1);
        let chunk_count = m.div_ceil(chunk);
        let window = self.window;
        let policy = self.policy;

        type ChunkResults = Vec<(usize, Vec<(usize, usize, Vec<DiffRecord>)>)>;
        let mut chunks: ChunkResults = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        for c in (worker..chunk_count).step_by(threads) {
                            let start = rows_start + c * chunk;
                            let end = (start + chunk).min(rows_end);
                            let mut local = Vec::new();
                            for j in start..end {
                                for i in window.prev_pairs(j) {
                                    let records =
                                        extract_diffs(&queries[i], &queries[j], i, j, policy);
                                    local.push((i, j, records));
                                }
                            }
                            mine.push((c, local));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("diff worker panicked"))
                .collect()
        });
        chunks.sort_unstable_by_key(|(c, _)| *c);
        chunks.into_iter().flat_map(|(_, local)| local).collect()
    }
}

/// The number of cores the builder may use; 1 (forcing the serial path) when the platform
/// cannot report its parallelism.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

/// Appends one compared pair's records to the growing store and edge list: leaf records
/// first (their ids label the edge), then ancestors; identical pairs contribute nothing.
/// This fold step is shared by batch builds and incremental extends — it *is* the byte-level
/// layout of the graph, so both paths produce identical stores.
fn append_pair(
    store: &mut DiffStore,
    edges: &mut Vec<Edge>,
    i: usize,
    j: usize,
    records: Vec<DiffRecord>,
) {
    if records.is_empty() {
        return;
    }
    let (leaves, ancestors): (Vec<DiffRecord>, Vec<DiffRecord>) =
        records.into_iter().partition(|r| r.is_leaf);
    let leaf_ids = store.extend(leaves);
    store.extend(ancestors);
    edges.push(Edge {
        from: i,
        to: j,
        diffs: leaf_ids,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_ast::Node;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    #[test]
    fn pair_enumeration_counts() {
        assert_eq!(WindowStrategy::AllPairs.pairs(4).count(), 6);
        assert_eq!(WindowStrategy::Sliding(2).pairs(4).count(), 3);
        assert_eq!(WindowStrategy::Sliding(3).pairs(4).count(), 5);
        // degenerate windows are clamped to 2
        assert_eq!(WindowStrategy::Sliding(0).pairs(4).count(), 3);
        assert_eq!(WindowStrategy::AllPairs.pairs(0).count(), 0);
        assert_eq!(WindowStrategy::AllPairs.pairs(1).count(), 0);
    }

    #[test]
    fn sliding_constructor_normalises_degenerate_windows() {
        assert_eq!(WindowStrategy::sliding(0), WindowStrategy::Sliding(2));
        assert_eq!(WindowStrategy::sliding(1), WindowStrategy::Sliding(2));
        assert_eq!(WindowStrategy::sliding(2), WindowStrategy::Sliding(2));
        assert_eq!(WindowStrategy::sliding(16), WindowStrategy::Sliding(16));
    }

    #[test]
    fn pair_count_matches_enumeration() {
        for n in 0..40 {
            for strategy in [
                WindowStrategy::AllPairs,
                WindowStrategy::Sliding(0),
                WindowStrategy::Sliding(2),
                WindowStrategy::Sliding(3),
                WindowStrategy::Sliding(7),
                WindowStrategy::Sliding(100),
            ] {
                assert_eq!(
                    strategy.pair_count(n),
                    strategy.pairs(n).count(),
                    "{strategy:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn pairs_are_enumerated_in_append_order() {
        // Every pair (i, j) appears after all pairs with a smaller j: the order a streaming
        // ingest would discover them in.
        for strategy in [WindowStrategy::AllPairs, WindowStrategy::Sliding(3)] {
            let pairs: Vec<(usize, usize)> = strategy.pairs(8).collect();
            for w in pairs.windows(2) {
                assert!(
                    w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                    "{pairs:?}"
                );
            }
        }
    }

    #[test]
    fn prev_pairs_is_the_adjoint_of_row_pairs() {
        for strategy in [
            WindowStrategy::AllPairs,
            WindowStrategy::Sliding(0),
            WindowStrategy::Sliding(2),
            WindowStrategy::Sliding(5),
        ] {
            for j in 0..20usize {
                for i in 0..j {
                    assert_eq!(
                        strategy.prev_pairs(j).contains(&i),
                        strategy.row_pairs(i, j + 1).contains(&j),
                        "{strategy:?} i={i} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliding_window_pairs_stay_within_window() {
        for (i, j) in WindowStrategy::Sliding(3).pairs(10) {
            assert!(j > i && j - i < 3);
        }
    }

    #[test]
    fn builder_skips_identical_pairs() {
        let q = parse("SELECT a FROM t").unwrap();
        let r = parse("SELECT b FROM t").unwrap();
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(vec![q.clone(), q, r]);
        // (0,1) identical -> skipped; (0,2) and (1,2) differ.
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn building_from_an_arc_log_shares_it() {
        let log: crate::QueryLog = vec![
            parse("SELECT a FROM t WHERE x = 1").unwrap(),
            parse("SELECT a FROM t WHERE x = 2").unwrap(),
        ]
        .into_query_log();
        let g = GraphBuilder::new().build(&log);
        assert!(std::sync::Arc::ptr_eq(g.queries(), &log));
    }

    #[test]
    fn parallel_threshold_does_not_change_small_builds() {
        let log: Vec<Node> = (0..5)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {i}")).unwrap())
            .collect();
        let a = GraphBuilder::new().parallel(true).build(&log);
        let b = GraphBuilder::new().parallel(false).build(&log);
        assert_eq!(a.edges().len(), b.edges().len());
    }

    #[test]
    fn parallel_large_build_matches_serial() {
        let log: Vec<Node> = (0..40)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 7)).unwrap())
            .collect();
        let a = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(true)
            .build(&log);
        let b = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(false)
            .build(&log);
        assert_eq!(a.edges().len(), b.edges().len());
        assert_eq!(a.store().len(), b.store().len());
        for (ea, eb) in a.edges().iter().zip(b.edges().iter()) {
            assert_eq!((ea.from, ea.to), (eb.from, eb.to));
        }
    }

    #[test]
    fn extending_one_query_at_a_time_matches_a_batch_build() {
        let log: Vec<Node> = (0..12)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 5)).unwrap())
            .collect();
        for window in [
            WindowStrategy::AllPairs,
            WindowStrategy::sliding(2),
            WindowStrategy::sliding(4),
        ] {
            let builder = GraphBuilder::new().window(window);
            let mut acc = GraphAccumulator::new();
            for (k, q) in log.iter().enumerate() {
                assert_eq!(builder.extend(&mut acc, q.clone()), k);
                // Every intermediate prefix matches the batch build of that prefix.
                assert_eq!(acc.to_graph(), builder.build(log[..=k].to_vec()));
            }
            assert_eq!(acc.stats(), acc.to_graph().stats());
            assert_eq!(acc.len(), log.len());
        }
    }

    #[test]
    fn extend_batch_matches_per_query_extends() {
        let log: Vec<Node> = (0..40)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 7)).unwrap())
            .collect();
        for parallel in [false, true] {
            let builder = GraphBuilder::new()
                .window(WindowStrategy::AllPairs)
                .parallel(parallel);
            let mut bulk = GraphAccumulator::new();
            // Two bulk appends (the second exercises a non-zero row offset in the parallel
            // fan-out) must equal forty single extends.
            assert_eq!(builder.extend_batch(&mut bulk, log[..25].to_vec()), 0..25);
            assert_eq!(builder.extend_batch(&mut bulk, log[25..].to_vec()), 25..40);
            let mut single = GraphAccumulator::new();
            for q in &log {
                builder.extend(&mut single, q.clone());
            }
            assert_eq!(bulk.to_graph(), single.to_graph());
        }
    }

    #[test]
    fn edge_diffs_reference_leaf_records_only() {
        let log: Vec<Node> = vec![
            parse("SELECT sales FROM t WHERE cty = 'USA'").unwrap(),
            parse("SELECT costs FROM t WHERE cty = 'EUR'").unwrap(),
        ];
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .policy(AncestorPolicy::Full)
            .build(log);
        assert_eq!(g.edges().len(), 1);
        for id in &g.edges()[0].diffs {
            assert!(g.store().get(*id).is_leaf);
        }
        // Ancestor records are still in the store for the mapper to consider.
        assert!(g.store().iter().any(|(_, r)| !r.is_leaf));
    }
}
