//! Graph construction: pair enumeration strategies and (optionally parallel) pairwise diffing.

use crate::graph::{Edge, InteractionGraph, IntoQueryLog, QueryLog};
use pi_diff::{extract_diffs, AncestorPolicy, DiffRecord, DiffStore};
use std::ops::Range;

/// Which query pairs are compared when building the interaction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowStrategy {
    /// Compare every pair of queries (`O(|Q|²)` alignments) — the unoptimised baseline.
    AllPairs,
    /// Compare only queries within a sliding window of the given size over the log order
    /// (§6.1).  A window of 2 compares consecutive queries only.
    Sliding(usize),
}

impl WindowStrategy {
    /// The `j` partners compared with query `i` (always `j > i`) in a log of `n` queries.
    pub fn row_pairs(self, i: usize, n: usize) -> Range<usize> {
        match self {
            WindowStrategy::AllPairs => (i + 1)..n,
            WindowStrategy::Sliding(w) => (i + 1)..n.min(i + w.max(2)),
        }
    }

    /// Enumerates the `(i, j)` pairs (with `i < j`) this strategy compares for a log of
    /// `n` queries, in row-major order.
    ///
    /// Lazily: `AllPairs` over a large log never materialises its `O(n²)` pair list.
    pub fn pairs(self, n: usize) -> impl Iterator<Item = (usize, usize)> {
        (0..n).flat_map(move |i| self.row_pairs(i, n).map(move |j| (i, j)))
    }

    /// The exact number of pairs [`WindowStrategy::pairs`] yields, in closed form.
    pub fn pair_count(self, n: usize) -> usize {
        match self {
            WindowStrategy::AllPairs => n * n.saturating_sub(1) / 2,
            WindowStrategy::Sliding(w) => {
                // Each row i contributes min(k, (n-1) - i) pairs, where k is the max offset.
                let k = w.max(2) - 1;
                let m = n.saturating_sub(1);
                if m <= k {
                    m * (m + 1) / 2
                } else {
                    k * (m - k) + k * (k + 1) / 2
                }
            }
        }
    }
}

/// Builds [`InteractionGraph`]s from parsed query logs.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    window: WindowStrategy,
    policy: AncestorPolicy,
    parallel: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder {
            window: WindowStrategy::Sliding(2),
            policy: AncestorPolicy::LcaPruned,
            parallel: false,
        }
    }
}

impl GraphBuilder {
    /// A builder with the paper's recommended defaults (window = 2, LCA pruning on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pair enumeration strategy.
    pub fn window(mut self, window: WindowStrategy) -> Self {
        self.window = window;
        self
    }

    /// Sets the ancestor materialisation policy.
    pub fn policy(mut self, policy: AncestorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables multi-threaded pairwise diffing.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builds the interaction graph for a log of parsed queries.
    ///
    /// The log is taken as (or converted into) a [`QueryLog`], so graphs built from an
    /// existing `Arc`'d log share it instead of cloning every query.
    pub fn build(&self, queries: impl IntoQueryLog) -> InteractionGraph {
        let queries: QueryLog = queries.into_query_log();
        let n = queries.len();
        let per_pair = if self.parallel && self.window.pair_count(n) > 32 {
            self.diff_pairs_parallel(&queries)
        } else {
            self.window
                .pairs(n)
                .map(|(i, j)| {
                    (
                        i,
                        j,
                        extract_diffs(&queries[i], &queries[j], i, j, self.policy),
                    )
                })
                .collect()
        };

        let mut store = DiffStore::new();
        let mut edges = Vec::new();
        for (i, j, records) in per_pair {
            if records.is_empty() {
                continue;
            }
            let (leaves, ancestors): (Vec<DiffRecord>, Vec<DiffRecord>) =
                records.into_iter().partition(|r| r.is_leaf);
            let leaf_ids = store.extend(leaves);
            store.extend(ancestors);
            edges.push(Edge {
                from: i,
                to: j,
                diffs: leaf_ids,
            });
        }

        InteractionGraph {
            queries,
            store,
            edges,
        }
    }

    /// Fans pairwise diffing out over the available cores with scoped threads.
    ///
    /// The row space is cut into small chunks (4 per worker) and exactly `threads` workers
    /// each process every `threads`-th chunk — the stride balances the triangular AllPairs
    /// workload (early rows have more partners than late ones) without oversubscribing the
    /// CPU.  Workers collect results per chunk, and the chunks are re-assembled in row order
    /// afterwards, so the output is *identical* to the serial row-major enumeration — no
    /// shared mutable state, no lock contention.
    fn diff_pairs_parallel(&self, queries: &QueryLog) -> Vec<(usize, usize, Vec<DiffRecord>)> {
        let n = queries.len();
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(4)
            .min(n.max(1));
        let chunk = n.div_ceil(threads * 4).max(1);
        let chunk_count = n.div_ceil(chunk);
        let window = self.window;
        let policy = self.policy;

        type ChunkResults = Vec<(usize, Vec<(usize, usize, Vec<DiffRecord>)>)>;
        let mut chunks: ChunkResults = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        for c in (worker..chunk_count).step_by(threads) {
                            let start = c * chunk;
                            let end = (start + chunk).min(n);
                            let mut local = Vec::new();
                            for i in start..end {
                                for j in window.row_pairs(i, n) {
                                    let records =
                                        extract_diffs(&queries[i], &queries[j], i, j, policy);
                                    local.push((i, j, records));
                                }
                            }
                            mine.push((c, local));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("diff worker panicked"))
                .collect()
        });
        chunks.sort_unstable_by_key(|(c, _)| *c);
        chunks.into_iter().flat_map(|(_, local)| local).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Node;
    use pi_sql::parse;

    #[test]
    fn pair_enumeration_counts() {
        assert_eq!(WindowStrategy::AllPairs.pairs(4).count(), 6);
        assert_eq!(WindowStrategy::Sliding(2).pairs(4).count(), 3);
        assert_eq!(WindowStrategy::Sliding(3).pairs(4).count(), 5);
        // degenerate windows are clamped to 2
        assert_eq!(WindowStrategy::Sliding(0).pairs(4).count(), 3);
        assert_eq!(WindowStrategy::AllPairs.pairs(0).count(), 0);
        assert_eq!(WindowStrategy::AllPairs.pairs(1).count(), 0);
    }

    #[test]
    fn pair_count_matches_enumeration() {
        for n in 0..40 {
            for strategy in [
                WindowStrategy::AllPairs,
                WindowStrategy::Sliding(0),
                WindowStrategy::Sliding(2),
                WindowStrategy::Sliding(3),
                WindowStrategy::Sliding(7),
                WindowStrategy::Sliding(100),
            ] {
                assert_eq!(
                    strategy.pair_count(n),
                    strategy.pairs(n).count(),
                    "{strategy:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn sliding_window_pairs_stay_within_window() {
        for (i, j) in WindowStrategy::Sliding(3).pairs(10) {
            assert!(j > i && j - i < 3);
        }
    }

    #[test]
    fn builder_skips_identical_pairs() {
        let q = parse("SELECT a FROM t").unwrap();
        let r = parse("SELECT b FROM t").unwrap();
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(vec![q.clone(), q, r]);
        // (0,1) identical -> skipped; (0,2) and (1,2) differ.
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn building_from_an_arc_log_shares_it() {
        let log: crate::QueryLog = vec![
            parse("SELECT a FROM t WHERE x = 1").unwrap(),
            parse("SELECT a FROM t WHERE x = 2").unwrap(),
        ]
        .into_query_log();
        let g = GraphBuilder::new().build(&log);
        assert!(std::sync::Arc::ptr_eq(&g.queries, &log));
    }

    #[test]
    fn parallel_threshold_does_not_change_small_builds() {
        let log: Vec<Node> = (0..5)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {i}")).unwrap())
            .collect();
        let a = GraphBuilder::new().parallel(true).build(&log);
        let b = GraphBuilder::new().parallel(false).build(&log);
        assert_eq!(a.edges.len(), b.edges.len());
    }

    #[test]
    fn parallel_large_build_matches_serial() {
        let log: Vec<Node> = (0..40)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 7)).unwrap())
            .collect();
        let a = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(true)
            .build(&log);
        let b = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(false)
            .build(&log);
        assert_eq!(a.edges.len(), b.edges.len());
        assert_eq!(a.store.len(), b.store.len());
        for (ea, eb) in a.edges.iter().zip(b.edges.iter()) {
            assert_eq!((ea.from, ea.to), (eb.from, eb.to));
        }
    }

    #[test]
    fn edge_diffs_reference_leaf_records_only() {
        let log: Vec<Node> = vec![
            parse("SELECT sales FROM t WHERE cty = 'USA'").unwrap(),
            parse("SELECT costs FROM t WHERE cty = 'EUR'").unwrap(),
        ];
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .policy(AncestorPolicy::Full)
            .build(log);
        assert_eq!(g.edges.len(), 1);
        for id in &g.edges[0].diffs {
            assert!(g.store.get(*id).is_leaf);
        }
        // Ancestor records are still in the store for the mapper to consider.
        assert!(g.store.iter().any(|(_, r)| !r.is_leaf));
    }
}
