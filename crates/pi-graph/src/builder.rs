//! Graph construction: pair enumeration strategies and (optionally parallel) pairwise diffing.
//!
//! Construction is defined *incrementally*: appending query `j` to a log compares it against
//! the predecessors the [`WindowStrategy`] admits (its `j - 1` predecessors for
//! [`WindowStrategy::AllPairs`], the previous `w - 1` for a sliding window), and appends the
//! resulting diff records and edge to the growing graph.  A batch [`GraphBuilder::build`] is
//! exactly the fold of [`GraphBuilder::extend`] over the log, so a streaming session that
//! appends queries one at a time produces a graph byte-identical to a one-shot build of the
//! same prefix — the invariant `pi-core`'s `Session` is built on.
//!
//! Parallel mining is cost-modelled and work-stealing: a batch's pairs are packed into
//! blocks of comparable *estimated alignment cost* ([`pi_diff::align_cost_model`] over
//! cached node counts) and executed by the [`steal`](crate::steal) scheduler, whose
//! determinism contract — block order, not steal order, defines the output — keeps every
//! parallel build byte-identical to the serial fold.  The fan-out only engages when the
//! estimated work would amortise the thread-scope overhead (`PARALLEL_MIN_COST`), so small
//! batches and latency-sensitive single-query extends never pay for threads they cannot
//! use.

use crate::dedup::{DedupTable, DiffMemo};
use crate::graph::{Edge, GraphStats, InteractionGraph, IntoQueryLog, QueryLog};
use crate::steal;
use pi_ast::Node;
use pi_diff::{
    align_cost_model, extract_changes, extract_diffs, AncestorPolicy, DiffId, DiffRecord,
    DiffStore, TreeChange,
};
use std::collections::HashSet;
use std::ops::Range;
use std::sync::OnceLock;

/// The estimated new work, in [`pi_diff::align_cost_model`] units, below which mining stays
/// serial even when multiple workers are available.
///
/// Calibration, from the committed `BENCH_mining.json` anchors: `mine_sliding16` runs 7,936
/// pair alignments over ~30-node trees (≈ 900 units each, ≈ 7.1 M units total) in ≈ 11.5 ms
/// serial — ≈ 1.6 ns per unit.  600 k units therefore correspond to ≈ 1 ms of serial
/// alignment work, well above the measured tens-of-microseconds cost of a scoped
/// spawn/join cycle, so a batch that crosses the gate has real work to amortise the fan-out
/// against.  The old `new_pairs > 32` gate counted pairs instead of work and sent 32-pair
/// batches of tiny trees (≈ 30 µs of alignment) through the thread scope — the root of the
/// `mine_sliding16` parallel regression this gate fixes.
const PARALLEL_MIN_COST: u64 = 600_000;

/// Floor on a block's estimated cost (≈ 25 µs of alignment work) so stealing never
/// degenerates into per-pair deque traffic when a workload is dominated by near-zero-cost
/// pairs (identical shapes, memo hits).
const MIN_BLOCK_COST: u64 = 16_000;

/// Target number of blocks dealt per worker: enough slack for stealing to balance the
/// triangular AllPairs tail (late rows have more predecessors than early ones) without
/// flooding the deques with tiny blocks.
const BLOCKS_PER_WORKER: u64 = 8;

/// Estimated cost of re-wrapping one memoized change into a store record: a refcount bump
/// plus a 4-word write — tens of nanoseconds, i.e. a few dozen cost units.
const MEMO_WRAP_COST_PER_RECORD: u64 = 32;

/// Fixed per-pair overhead of the memoized fast path (two class lookups, one memo probe,
/// edge bookkeeping).
const MEMO_PAIR_BASE_COST: u64 = 16;

/// Width, in distinct-class ids, of the square tiles the memo pre-alignment pass iterates:
/// pairs are sorted so one tile touches at most `2 · CLASS_TILE` representatives, keeping
/// both trees of every alignment in flight hot in cache.
const CLASS_TILE: u32 = 8;

/// Parses a `PI_THREADS` override value: `Ok(Some(n))` forces `n` mining workers,
/// `Ok(None)` for the explicit "no override" spellings (empty or `0`), and `Err` for
/// anything else — a typo like `PI_THREADS=fourteen` must not be silently indistinguishable
/// from the variable being unset.
fn parse_thread_override(value: &str) -> Result<Option<usize>, ()> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(()),
    }
}

/// The process-wide `PI_THREADS` override, read once per process.  CI sets it before launch
/// to force every builder in a test run through one scheduler configuration — the serial
/// and 4-worker runs must both reproduce the same graphs bit for bit, so a single-core
/// runner cannot mask a multi-thread identity bug.
///
/// A malformed value is ignored, but *loudly*: one `eprintln!` per process (the `OnceLock`
/// guarantees the once), so a `PI_THREADS=four` typo shows up in the log instead of
/// silently running the auto-sizing policy the operator thought they had overridden.
fn env_thread_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("PI_THREADS") {
        Ok(value) => parse_thread_override(&value).unwrap_or_else(|()| {
            eprintln!(
                "PI_THREADS={value:?} is not a valid worker count (expected a positive \
                 integer); ignoring the override"
            );
            None
        }),
        Err(_) => None,
    })
}

/// Which query pairs are compared when building the interaction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowStrategy {
    /// Compare every pair of queries (`O(|Q|²)` alignments) — the unoptimised baseline.
    AllPairs,
    /// Compare only queries within a sliding window of the given size over the log order
    /// (§6.1).  A window of 2 compares consecutive queries only.
    ///
    /// Prefer constructing this through [`WindowStrategy::sliding`], which normalises the
    /// window size.  A degenerate `Sliding(w)` with `w < 2` is still accepted and clamped to
    /// 2 wherever pairs are enumerated, but new code should not rely on that clamp — it
    /// exists only so that historical configurations keep working.
    Sliding(usize),
}

impl WindowStrategy {
    /// A sliding window of size `w`, normalised.
    ///
    /// A window below 2 cannot compare anything (a pair needs two queries), so `w < 2` is
    /// normalised to 2 — the paper's minimum, which compares consecutive queries only.  This
    /// constructor makes the degenerate case explicit at construction time instead of
    /// silently clamping deep inside pair enumeration.
    pub fn sliding(w: usize) -> Self {
        WindowStrategy::Sliding(w.max(2))
    }

    /// The `j` partners compared with query `i` (always `j > i`) in a log of `n` queries.
    pub fn row_pairs(self, i: usize, n: usize) -> Range<usize> {
        match self {
            WindowStrategy::AllPairs => (i + 1)..n,
            WindowStrategy::Sliding(w) => (i + 1)..n.min(i + w.max(2)),
        }
    }

    /// The predecessors `i` an *appended* query `j` is compared against (always `i < j`).
    ///
    /// This is the adjoint of [`WindowStrategy::row_pairs`]: `i ∈ prev_pairs(j)` exactly when
    /// `j ∈ row_pairs(i, j + 1)`.  It is the unit of incremental construction — when a log
    /// grows by one query, these are precisely the new alignments to run, and for a sliding
    /// window there are at most `w - 1` of them regardless of how long the log already is.
    pub fn prev_pairs(self, j: usize) -> Range<usize> {
        match self {
            WindowStrategy::AllPairs => 0..j,
            WindowStrategy::Sliding(w) => j.saturating_sub(w.max(2) - 1)..j,
        }
    }

    /// Enumerates the `(i, j)` pairs (with `i < j`) this strategy compares for a log of
    /// `n` queries, in *append order*: all partners of query 1, then of query 2, and so on —
    /// the order in which a streaming ingest discovers them.
    ///
    /// Lazily: `AllPairs` over a large log never materialises its `O(n²)` pair list.
    pub fn pairs(self, n: usize) -> impl Iterator<Item = (usize, usize)> {
        (0..n).flat_map(move |j| self.prev_pairs(j).map(move |i| (i, j)))
    }

    /// The exact number of pairs [`WindowStrategy::pairs`] yields, in closed form.
    pub fn pair_count(self, n: usize) -> usize {
        match self {
            WindowStrategy::AllPairs => n * n.saturating_sub(1) / 2,
            WindowStrategy::Sliding(w) => {
                // Each row i contributes min(k, (n-1) - i) pairs, where k is the max offset.
                let k = w.max(2) - 1;
                let m = n.saturating_sub(1);
                if m <= k {
                    m * (m + 1) / 2
                } else {
                    k * (m - k) + k * (k + 1) / 2
                }
            }
        }
    }
}

/// The growable state behind an incremental graph build: the log ingested so far —
/// **arena-backed**: one retained [`Node`] per *distinct* tree shape plus a 4-byte class id
/// per row — the append-only [`DiffStore`], and the edges discovered per appended query.
///
/// Duplicate queries resolve to their distinct-tree id at ingest and the duplicate tree is
/// dropped, so a million-query log of `d` distinct shapes retains `d` trees, not a million.
/// Row indices are unchanged everywhere else: the store and edges keep indexing by log row,
/// and [`GraphAccumulator::to_graph`] materialises the full row-indexed [`QueryLog`] (one
/// refcount bump per row) so frozen graphs are byte-identical to pre-arena builds
/// (property-tested).
///
/// Grown one query at a time with [`GraphBuilder::extend`]; frozen into an
/// [`InteractionGraph`] with [`GraphAccumulator::to_graph`] (non-destructive, for streaming
/// snapshots) or [`GraphAccumulator::into_graph`] (consuming, for one-shot builds).  Because
/// the store is append-only, every `DiffId` handed out while extending stays valid — and
/// identical — across all later snapshots.
#[derive(Debug, Clone, Default)]
pub struct GraphAccumulator {
    /// Row storage: distinct-tree arena + per-row class ids.  Always maintained (with the
    /// memo on *or* off) — this is the accumulator's query log, not an optimisation.
    pub(crate) dedup: DedupTable,
    pub(crate) store: DiffStore,
    pub(crate) edges: Vec<Edge>,
    /// The duplicate-collapsing alignment memo, persisted across extends so a streaming
    /// session pays one alignment per distinct ordered tree pair over its whole lifetime.
    /// Never observable in the graph: snapshots are byte-identical with or without it.
    pub(crate) memo: DiffMemo,
}

impl GraphAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries ingested so far.
    pub fn len(&self) -> usize {
        self.dedup.len()
    }

    /// True when no query has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.dedup.is_empty()
    }

    /// Number of distinct tree shapes among the ingested queries (`d ≤ n`).
    pub fn distinct(&self) -> usize {
        self.dedup.distinct()
    }

    /// The query at log row `idx` — the retained representative of its shape class,
    /// structurally identical to the query that was pushed.
    pub fn query(&self, idx: usize) -> &Node {
        self.dedup.representative(self.dedup.class_of(idx))
    }

    /// The arena-backed row storage: distinct-tree classes plus per-row class ids.
    pub fn dedup(&self) -> &DedupTable {
        &self.dedup
    }

    /// The diff records accumulated so far.
    pub fn store(&self) -> &DiffStore {
        &self.store
    }

    /// The edges accumulated so far.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The duplicate-collapsing alignment memo accumulated so far (empty when every extend
    /// ran with memoization disabled).  Exposed for introspection — `memoized_pairs()`,
    /// `alignments()` — never needed for correctness.
    pub fn memo(&self) -> &DiffMemo {
        &self.memo
    }

    /// Summary statistics of the graph accumulated so far.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            queries: self.dedup.len(),
            edges: self.edges.len(),
            diff_records: self.store.len(),
            distinct_paths: self.store.distinct_paths(),
        }
    }

    /// Estimated heap bytes of the accumulated *query-log storage*: the distinct-tree arena
    /// plus the per-row class ids ([`DedupTable::footprint_bytes`]).  Grows with the number
    /// of distinct shapes `d` plus 4 bytes per row — not with retained trees per row.
    /// Mined artifacts (store, edges, memo) are intentionally excluded; they are sized by
    /// the window strategy, not by log storage, and are reported separately by
    /// `pi-core`'s session breakdown.
    pub fn log_footprint_bytes(&self) -> usize {
        self.dedup.footprint_bytes()
    }

    /// The full row-indexed query log, materialised from the arena: one representative
    /// refcount bump per row.
    fn materialised_log(&self) -> Vec<Node> {
        (0..self.dedup.len())
            .map(|idx| self.query(idx).clone())
            .collect()
    }

    /// Freezes the current state into an [`InteractionGraph`] without consuming the
    /// accumulator: the row-indexed log is materialised from the arena into a fresh shared
    /// allocation (a refcount bump per row, never a tree copy), the store and edges are
    /// cloned as-is (record subtrees are `Arc`-shared, so this copies pointers, not trees).
    pub fn to_graph(&self) -> InteractionGraph {
        InteractionGraph::from_parts(
            self.materialised_log(),
            self.store.clone(),
            self.edges.clone(),
        )
    }

    /// Consumes the accumulator, moving its store and edges into an [`InteractionGraph`]
    /// (the row-indexed log is materialised from the arena, as in
    /// [`GraphAccumulator::to_graph`]).
    pub fn into_graph(self) -> InteractionGraph {
        InteractionGraph::from_parts(self.materialised_log(), self.store, self.edges)
    }
}

/// Builds [`InteractionGraph`]s from parsed query logs.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    window: WindowStrategy,
    policy: AncestorPolicy,
    parallel: bool,
    memoize: bool,
    threads: usize,
    steal_seed: Option<u64>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder {
            window: WindowStrategy::Sliding(2),
            policy: AncestorPolicy::LcaPruned,
            parallel: false,
            memoize: true,
            threads: 0,
            steal_seed: None,
        }
    }
}

impl GraphBuilder {
    /// A builder with the paper's recommended defaults (window = 2, LCA pruning on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pair enumeration strategy.
    pub fn window(mut self, window: WindowStrategy) -> Self {
        self.window = window;
        self
    }

    /// Sets the ancestor materialisation policy.
    pub fn policy(mut self, policy: AncestorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables multi-threaded pairwise diffing.
    ///
    /// When enabled, batches whose estimated alignment work crosses the cost-model gate are
    /// packed into cost-sized blocks and mined by the work-stealing scheduler; smaller
    /// batches — and any build on a single-core host — fall back to the serial path, so
    /// `parallel(true)` is never slower than serial on work too small to share.  The built
    /// graph is byte-identical either way.  See [`GraphBuilder::threads`] for explicit
    /// worker counts.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Overrides the number of mining workers (default `0` = automatic).
    ///
    /// `0` resolves automatically: the `PI_THREADS` environment variable if set to a
    /// positive integer, else every available core when [`GraphBuilder::parallel`] is on,
    /// else serial.  An explicit `n ≥ 1` wins over both: `threads(1)` forces the serial
    /// path outright, and `threads(n > 1)` enables the work-stealing scheduler with exactly
    /// `n` workers even when `parallel` was never switched on (asking for workers *is*
    /// asking for parallelism).  Counts above the physical core count still spawn that many
    /// real workers — oversubscription costs a little time but lets a single-core host
    /// exercise genuine multi-worker interleavings.  Whatever the setting, the built graph
    /// is byte-identical: worker count only changes who does the work, never the output
    /// (see [`GraphBuilder::steal_seed`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Test-only hook: seeds a deterministic perturbation of the work-stealing schedule
    /// *and* bypasses the cost-model gate, so tests can drive logs of any size through the
    /// scheduler and exercise steal interleavings (scattered block deals, rotated victim
    /// scans) a natural run would rarely produce.
    ///
    /// The scheduler's determinism contract — results are merged in *block* order, never
    /// steal order — means the output must not change: every seed, and `None` (the
    /// production default), yields byte-identical graphs.  Property-tested across thread
    /// counts 1–8.
    pub fn steal_seed(mut self, seed: Option<u64>) -> Self {
        self.steal_seed = seed;
        self
    }

    /// The number of mining workers this build may use — see [`GraphBuilder::threads`] for
    /// the precedence order (explicit override, then `PI_THREADS`, then the `parallel`
    /// flag).
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = env_thread_override() {
            return n;
        }
        if self.parallel {
            available_cores()
        } else {
            1
        }
    }

    /// Enables or disables duplicate collapsing + alignment memoization (default: on).
    ///
    /// With memoization the expensive ordered-tree alignment runs once per distinct ordered
    /// pair of tree *shapes* (`O(d²)` for `d` distinct shapes) instead of once per log pair
    /// (`O(n²)` under [`WindowStrategy::AllPairs`]); identical-shape pairs short-circuit to
    /// zero work.  The produced graph is **byte-identical** either way — same edges, same
    /// records, same `DiffId` offsets (property-tested) — so this knob exists purely for
    /// A/B measurement of the memo itself.
    pub fn memoize(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// Appends one query to an incrementally built graph, running only the new alignments
    /// the window strategy admits ([`WindowStrategy::prev_pairs`]) and appending their
    /// records to the accumulator's store at stable `DiffId` offsets.  Returns the appended
    /// query's log index.
    ///
    /// Folding `extend` over a log yields the same accumulator state as a one-shot
    /// [`GraphBuilder::build`] of that log — same edges, same records, same ids, in the same
    /// order.
    pub fn extend(&self, acc: &mut GraphAccumulator, query: Node) -> usize {
        self.extend_batch(acc, std::iter::once(query)).start
    }

    /// Appends many queries at once, returning the range of their log indices.
    ///
    /// Equivalent to (and byte-identical with) calling [`GraphBuilder::extend`] per query,
    /// but when the builder is parallel and the batch brings enough new alignments, they are
    /// fanned out across cores — this is how the one-shot pipeline entry points keep their
    /// multi-core mining while being wrappers over a streaming session.
    pub fn extend_batch(
        &self,
        acc: &mut GraphAccumulator,
        queries: impl IntoIterator<Item = Node>,
    ) -> Range<usize> {
        let start = acc.dedup.len();
        // Row storage first: every query resolves to its distinct-tree id and the duplicate
        // tree is dropped right here — the batch never retains more than `d` trees however
        // long it is.  Mining below reads trees back through the class representatives
        // (structurally identical to the pushed queries, so the mined bytes cannot differ).
        for query in queries {
            acc.dedup.ingest(&query);
        }
        let end = acc.dedup.len();
        if self.memoize {
            // Split borrows: the memo/store/edges grow while the dedup table is read.
            let GraphAccumulator {
                dedup,
                store,
                edges,
                memo,
            } = acc;
            self.mine_rows_memoized(dedup, start..end, memo, store, edges);
            return start..end;
        }
        let threads = self.effective_threads();
        if (threads > 1 && end - start > 1) || self.steal_seed.is_some() {
            let dedup = &acc.dedup;
            let policy = self.policy;
            let mined = self.mine_pair_blocks(
                threads,
                start..end,
                // Node counts come from the dedup table's per-class cache — two array loads
                // per pair, no `Node::size` walks over the window's predecessors.
                |i, j| {
                    align_cost_model(
                        dedup.tree_size(dedup.class_of(i)),
                        dedup.tree_size(dedup.class_of(j)),
                    )
                },
                |i, j| {
                    extract_diffs(
                        dedup.representative(dedup.class_of(i)),
                        dedup.representative(dedup.class_of(j)),
                        i,
                        j,
                        policy,
                    )
                },
            );
            if let Some(results) = mined {
                for (i, j, records) in results {
                    append_pair(&mut acc.store, &mut acc.edges, i, j, records);
                }
                return start..end;
            }
        }
        for j in start..end {
            for i in self.window.prev_pairs(j) {
                let records = extract_diffs(acc.query(i), acc.query(j), i, j, self.policy);
                append_pair(&mut acc.store, &mut acc.edges, i, j, records);
            }
        }
        start..end
    }

    /// Builds the interaction graph for a log of parsed queries.
    ///
    /// The log is taken as (or converted into) a [`QueryLog`], so graphs built from an
    /// existing `Arc`'d log share it instead of cloning every query.  The result is
    /// identical to folding [`GraphBuilder::extend`] over the log — pairs are diffed in
    /// append order — the parallel path only computes the alignments concurrently before
    /// assembling them in that same order.
    pub fn build(&self, queries: impl IntoQueryLog) -> InteractionGraph {
        let queries: QueryLog = queries.into_query_log();
        let n = queries.len();
        let mut store = DiffStore::new();
        let mut edges = Vec::new();
        if self.memoize {
            // A one-shot build shares (or takes over) the input log Arc, so the arena is
            // only a mining-side view: a local dedup table over the log's rows.
            let mut dedup = DedupTable::new();
            for query in queries.iter() {
                dedup.ingest(query);
            }
            let mut memo = DiffMemo::new();
            self.mine_rows_memoized(&dedup, 0..n, &mut memo, &mut store, &mut edges);
            return InteractionGraph::from_parts(queries, store, edges);
        }
        let threads = self.effective_threads();
        let mut mined = None;
        if (threads > 1 && n > 1) || self.steal_seed.is_some() {
            let policy = self.policy;
            let log = &queries;
            let sizes: Vec<usize> = log.iter().map(Node::size).collect();
            mined = self.mine_pair_blocks(
                threads,
                0..n,
                |i, j| align_cost_model(sizes[i], sizes[j]),
                |i, j| extract_diffs(&log[i], &log[j], i, j, policy),
            );
        }
        match mined {
            Some(results) => {
                for (i, j, records) in results {
                    append_pair(&mut store, &mut edges, i, j, records);
                }
            }
            None => {
                for j in 0..n {
                    for i in self.window.prev_pairs(j) {
                        let records = extract_diffs(&queries[i], &queries[j], i, j, self.policy);
                        append_pair(&mut store, &mut edges, i, j, records);
                    }
                }
            }
        }
        InteractionGraph::from_parts(queries, store, edges)
    }

    /// The duplicate-collapsing mining path shared by batch builds and incremental extends:
    /// ingest the rows into the memo's dedup table, then walk the log pairs in append
    /// order.  Identical-shape pairs short-circuit before the memo is even consulted;
    /// *recurring* pairs (a duplicated shape on either side) are aligned once and their
    /// memoized change lists streamed straight into the store per occurrence; pairs of two
    /// singleton shapes — which cannot recur — are aligned directly, exactly like a
    /// memo-off build, so fully-distinct logs pay only the dedup bookkeeping.
    ///
    /// When multiple workers are available and the batch is large, the missing recurring
    /// alignments are pre-computed in cache-conscious tiles over the distinct-pair space
    /// and the per-pair record construction rides the same cost-blocked work-stealing
    /// fan-out as the unmemoized path.
    ///
    /// Every path is the same fold over the same append order, so the resulting store and
    /// edge list are byte-identical to the unmemoized builder's — alignment is purely
    /// structural, and every query is structurally identical to its class representative.
    fn mine_rows_memoized(
        &self,
        dedup: &DedupTable,
        rows: Range<usize>,
        memo: &mut DiffMemo,
        store: &mut DiffStore,
        edges: &mut Vec<Edge>,
    ) {
        memo.set_policy(self.policy);
        debug_assert!(dedup.len() >= rows.end, "rows ingested before mining");
        let policy = self.policy;
        let threads = self.effective_threads();
        if (threads > 1 && rows.len() > 1) || self.steal_seed.is_some() {
            // Pre-align the distinct ordered pairs this batch will admit to the memo but
            // the memo lacks, in first-demand order.  The admission scan mirrors the
            // serial loop's, so the same pairs end up memoized.  It also totals the cost
            // of the alignments that will *stay* direct (un-admitted pairs): that — not
            // the memo-hit volume — is what decides whether per-pair record construction
            // fans out below.
            let mut queued: HashSet<(u32, u32)> = HashSet::new();
            let mut needed: Vec<(u32, u32)> = Vec::new();
            let mut direct_cost: u64 = 0;
            for j in rows.clone() {
                let cb = dedup.class_of(j);
                for i in self.window.prev_pairs(j) {
                    let ca = dedup.class_of(i);
                    if ca == cb || memo.get(ca, cb).is_some() || queued.contains(&(ca, cb)) {
                        continue;
                    }
                    if memo.admit(dedup, ca, cb) {
                        queued.insert((ca, cb));
                        needed.push((ca, cb));
                    } else {
                        direct_cost = direct_cost.saturating_add(align_cost_model(
                            dedup.tree_size(ca),
                            dedup.tree_size(cb),
                        ));
                    }
                }
            }
            self.align_missing_pairs(dedup, memo, needed, threads);
            // Per-pair record construction on the (now complete) memo: memoized pairs
            // re-wrap their change lists, singleton pairs align directly — the same
            // records the serial loop below would produce, in the same append order.
            // Fanning out is only worth it when the *direct* alignments left over carry
            // real work: memo hits are bandwidth-bound Arc-clone appends, and a streaming
            // chunk of mostly-hits is faster folded serially than scattered across
            // workers and gathered back (the wrap cost still shapes block sizes so mixed
            // blocks stay balanced).
            let memo_view: &DiffMemo = memo;
            let mined = if direct_cost >= PARALLEL_MIN_COST || self.steal_seed.is_some() {
                self.mine_pair_blocks(
                    threads,
                    rows.clone(),
                    |i, j| {
                        let (ca, cb) = (dedup.class_of(i), dedup.class_of(j));
                        if ca == cb {
                            return 1;
                        }
                        match memo_view.get(ca, cb) {
                            Some(entry) => {
                                MEMO_PAIR_BASE_COST
                                    + MEMO_WRAP_COST_PER_RECORD * entry.changes().len() as u64
                            }
                            None => align_cost_model(dedup.tree_size(ca), dedup.tree_size(cb)),
                        }
                    },
                    |i, j| {
                        let (ca, cb) = (dedup.class_of(i), dedup.class_of(j));
                        if ca == cb {
                            return Vec::new();
                        }
                        match memo_view.get(ca, cb) {
                            Some(entry) => entry
                                .changes()
                                .iter()
                                .map(|change| {
                                    DiffRecord::from_shared(i, j, std::sync::Arc::clone(change))
                                })
                                .collect(),
                            None => extract_diffs(
                                dedup.representative(ca),
                                dedup.representative(cb),
                                i,
                                j,
                                policy,
                            ),
                        }
                    },
                )
            } else {
                None
            };
            if let Some(results) = mined {
                for (i, j, records) in results {
                    append_pair(store, edges, i, j, records);
                }
                return;
            }
        }
        for j in rows {
            let cb = dedup.class_of(j);
            for i in self.window.prev_pairs(j) {
                let ca = dedup.class_of(i);
                if ca == cb {
                    // Structurally identical pair: zero records, no edge — exactly what an
                    // unmemoized `extract_diffs` of the pair would conclude the hard way.
                    continue;
                }
                if let Some(entry) = memo.get(ca, cb) {
                    append_memoized(store, edges, i, j, entry);
                } else if memo.admit(dedup, ca, cb) {
                    let entry = memo.changes(dedup, ca, cb, policy);
                    append_memoized(store, edges, i, j, &entry);
                } else {
                    memo.count_direct_alignment();
                    let records = extract_diffs(
                        dedup.representative(ca),
                        dedup.representative(cb),
                        i,
                        j,
                        policy,
                    );
                    append_pair(store, edges, i, j, records);
                }
            }
        }
    }

    /// Ensures every pair in `needed` — the distinct ordered class pairs the admission
    /// scan accepted but the memo lacks — is memoized before per-pair record construction
    /// runs.  Small sets are aligned inline (the old code paid a full thread scope even
    /// for one missing pair); sets whose estimated cost crosses the parallel gate fan out
    /// through [`GraphBuilder::align_pairs_parallel`].
    fn align_missing_pairs(
        &self,
        dedup: &DedupTable,
        memo: &mut DiffMemo,
        needed: Vec<(u32, u32)>,
        threads: usize,
    ) {
        if needed.is_empty() {
            return;
        }
        let total: u64 = needed
            .iter()
            .map(|&(ca, cb)| align_cost_model(dedup.tree_size(ca), dedup.tree_size(cb)))
            .sum();
        if threads > 1 && (total >= PARALLEL_MIN_COST || self.steal_seed.is_some()) {
            for ((ca, cb), changes) in self.align_pairs_parallel(dedup, needed, threads) {
                memo.insert(ca, cb, changes);
            }
        } else {
            for (ca, cb) in needed {
                let changes = extract_changes(
                    dedup.representative(ca),
                    dedup.representative(cb),
                    self.policy,
                );
                memo.insert(ca, cb, changes);
            }
        }
    }

    /// Aligns the given distinct ordered class pairs on the work-stealing scheduler.
    ///
    /// The pairs are first sorted into [`CLASS_TILE`]-wide square tiles over the
    /// distinct-pair plane — one tile touches at most `2 · CLASS_TILE` representatives, so
    /// both trees of every alignment in flight stay hot in cache — then packed into blocks
    /// of comparable estimated cost, so the alignment load balances by work rather than by
    /// pair count.  Every result is keyed by its class pair, so neither block order nor
    /// steal order can affect the memo's contents.
    fn align_pairs_parallel(
        &self,
        dedup: &DedupTable,
        mut needed: Vec<(u32, u32)>,
        threads: usize,
    ) -> Vec<((u32, u32), Vec<TreeChange>)> {
        needed.sort_unstable_by_key(|&(ca, cb)| (ca / CLASS_TILE, cb / CLASS_TILE, ca, cb));
        let cost =
            |&(ca, cb): &(u32, u32)| align_cost_model(dedup.tree_size(ca), dedup.tree_size(cb));
        let total: u64 = needed.iter().map(cost).sum();
        let target = (total / (threads as u64 * BLOCKS_PER_WORKER)).max(MIN_BLOCK_COST);
        let blocks = steal::pack_by_cost(needed, cost, target);
        let policy = self.policy;
        steal::run_blocks(
            threads,
            self.steal_seed,
            blocks,
            |_, block: &Vec<(u32, u32)>| {
                block
                    .iter()
                    .map(|&(ca, cb)| {
                        let changes = extract_changes(
                            dedup.representative(ca),
                            dedup.representative(cb),
                            policy,
                        );
                        ((ca, cb), changes)
                    })
                    .collect::<Vec<_>>()
            },
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// Enumerates the append-order pairs of `rows`, estimates their total alignment cost,
    /// and — when that cost crosses the parallel gate (or the test hook forces it) — mines
    /// them on the work-stealing scheduler, returning the per-pair records **in append
    /// order**: blocks are contiguous runs of the serial enumeration sized by estimated
    /// cost, and [`steal::run_blocks`] merges results in block order regardless of steal
    /// interleaving, so the output is identical to the serial loop's.
    ///
    /// Returns `None` when the estimated work is too small to amortise the fan-out,
    /// leaving the caller on the serial path — this cost gate replaces the old row-count
    /// (`new_pairs > 32`) threshold, which charged tiny-tree sliding windows a full
    /// thread scope for microseconds of alignment.
    fn mine_pair_blocks<C, F>(
        &self,
        threads: usize,
        rows: Range<usize>,
        pair_cost: C,
        pair_records: F,
    ) -> Option<Vec<(usize, usize, Vec<DiffRecord>)>>
    where
        C: Fn(usize, usize) -> u64,
        F: Fn(usize, usize) -> Vec<DiffRecord> + Sync,
    {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut total: u64 = 0;
        for j in rows {
            for i in self.window.prev_pairs(j) {
                total = total.saturating_add(pair_cost(i, j).max(1));
                pairs.push((i, j));
            }
        }
        if pairs.is_empty() || (total < PARALLEL_MIN_COST && self.steal_seed.is_none()) {
            return None;
        }
        let target = (total / (threads as u64 * BLOCKS_PER_WORKER)).max(MIN_BLOCK_COST);
        let blocks = steal::pack_by_cost(pairs, |&(i, j)| pair_cost(i, j), target);
        let results = steal::run_blocks(
            threads,
            self.steal_seed,
            blocks,
            |_, block: &Vec<(usize, usize)>| {
                block
                    .iter()
                    .map(|&(i, j)| (i, j, pair_records(i, j)))
                    .collect::<Vec<_>>()
            },
        );
        Some(results.into_iter().flatten().collect())
    }
}

/// The number of cores the builder may use; 1 (forcing the serial path) when the platform
/// cannot report its parallelism.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

/// Streams a memoized pair entry straight into the store: the entry is pre-partitioned
/// (leaves first), so the leaf ids are exactly the next `leaf_count` appended ids — the
/// same byte-level layout [`append_pair`] produces with its per-pair partition, without
/// the per-pair partition.  Hash-collision entries (distinct classes, zero changes — the
/// equality the aligner, like the memo-off path, infers from equal hashes) contribute
/// nothing, matching `append_pair`'s empty-records early return.
fn append_memoized(
    store: &mut DiffStore,
    edges: &mut Vec<Edge>,
    i: usize,
    j: usize,
    entry: &crate::dedup::PairChanges,
) {
    if entry.is_empty() {
        return;
    }
    let first = store.next_id().0;
    for change in entry.changes() {
        store.push(DiffRecord::from_shared(i, j, std::sync::Arc::clone(change)));
    }
    edges.push(Edge {
        from: i,
        to: j,
        diffs: (first..first + entry.leaf_count()).map(DiffId).collect(),
    });
}

/// Appends one compared pair's records to the growing store and edge list: leaf records
/// first (their ids label the edge), then ancestors; identical pairs contribute nothing.
/// This fold step is shared by batch builds and incremental extends — it *is* the byte-level
/// layout of the graph, so both paths produce identical stores.
fn append_pair(
    store: &mut DiffStore,
    edges: &mut Vec<Edge>,
    i: usize,
    j: usize,
    records: Vec<DiffRecord>,
) {
    if records.is_empty() {
        return;
    }
    let (leaves, ancestors): (Vec<DiffRecord>, Vec<DiffRecord>) =
        records.into_iter().partition(|r| r.is_leaf);
    let leaf_ids = store.extend(leaves);
    store.extend(ancestors);
    edges.push(Edge {
        from: i,
        to: j,
        diffs: leaf_ids,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_ast::Node;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    #[test]
    fn pair_enumeration_counts() {
        assert_eq!(WindowStrategy::AllPairs.pairs(4).count(), 6);
        assert_eq!(WindowStrategy::Sliding(2).pairs(4).count(), 3);
        assert_eq!(WindowStrategy::Sliding(3).pairs(4).count(), 5);
        // degenerate windows are clamped to 2
        assert_eq!(WindowStrategy::Sliding(0).pairs(4).count(), 3);
        assert_eq!(WindowStrategy::AllPairs.pairs(0).count(), 0);
        assert_eq!(WindowStrategy::AllPairs.pairs(1).count(), 0);
    }

    #[test]
    fn sliding_constructor_normalises_degenerate_windows() {
        assert_eq!(WindowStrategy::sliding(0), WindowStrategy::Sliding(2));
        assert_eq!(WindowStrategy::sliding(1), WindowStrategy::Sliding(2));
        assert_eq!(WindowStrategy::sliding(2), WindowStrategy::Sliding(2));
        assert_eq!(WindowStrategy::sliding(16), WindowStrategy::Sliding(16));
    }

    #[test]
    fn pair_count_matches_enumeration() {
        for n in 0..40 {
            for strategy in [
                WindowStrategy::AllPairs,
                WindowStrategy::Sliding(0),
                WindowStrategy::Sliding(2),
                WindowStrategy::Sliding(3),
                WindowStrategy::Sliding(7),
                WindowStrategy::Sliding(100),
            ] {
                assert_eq!(
                    strategy.pair_count(n),
                    strategy.pairs(n).count(),
                    "{strategy:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn pairs_are_enumerated_in_append_order() {
        // Every pair (i, j) appears after all pairs with a smaller j: the order a streaming
        // ingest would discover them in.
        for strategy in [WindowStrategy::AllPairs, WindowStrategy::Sliding(3)] {
            let pairs: Vec<(usize, usize)> = strategy.pairs(8).collect();
            for w in pairs.windows(2) {
                assert!(
                    w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                    "{pairs:?}"
                );
            }
        }
    }

    #[test]
    fn prev_pairs_is_the_adjoint_of_row_pairs() {
        for strategy in [
            WindowStrategy::AllPairs,
            WindowStrategy::Sliding(0),
            WindowStrategy::Sliding(2),
            WindowStrategy::Sliding(5),
        ] {
            for j in 0..20usize {
                for i in 0..j {
                    assert_eq!(
                        strategy.prev_pairs(j).contains(&i),
                        strategy.row_pairs(i, j + 1).contains(&j),
                        "{strategy:?} i={i} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliding_window_pairs_stay_within_window() {
        for (i, j) in WindowStrategy::Sliding(3).pairs(10) {
            assert!(j > i && j - i < 3);
        }
    }

    #[test]
    fn builder_skips_identical_pairs() {
        let q = parse("SELECT a FROM t").unwrap();
        let r = parse("SELECT b FROM t").unwrap();
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(vec![q.clone(), q, r]);
        // (0,1) identical -> skipped; (0,2) and (1,2) differ.
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn building_from_an_arc_log_shares_it() {
        let log: crate::QueryLog = vec![
            parse("SELECT a FROM t WHERE x = 1").unwrap(),
            parse("SELECT a FROM t WHERE x = 2").unwrap(),
        ]
        .into_query_log();
        let g = GraphBuilder::new().build(&log);
        assert!(std::sync::Arc::ptr_eq(g.queries(), &log));
    }

    #[test]
    fn parallel_threshold_does_not_change_small_builds() {
        let log: Vec<Node> = (0..5)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {i}")).unwrap())
            .collect();
        let a = GraphBuilder::new().parallel(true).build(&log);
        let b = GraphBuilder::new().parallel(false).build(&log);
        assert_eq!(a.edges().len(), b.edges().len());
    }

    #[test]
    fn parallel_large_build_matches_serial() {
        let log: Vec<Node> = (0..40)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 7)).unwrap())
            .collect();
        let a = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(true)
            .build(&log);
        let b = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(false)
            .build(&log);
        assert_eq!(a.edges().len(), b.edges().len());
        assert_eq!(a.store().len(), b.store().len());
        for (ea, eb) in a.edges().iter().zip(b.edges().iter()) {
            assert_eq!((ea.from, ea.to), (eb.from, eb.to));
        }
    }

    #[test]
    fn extending_one_query_at_a_time_matches_a_batch_build() {
        let log: Vec<Node> = (0..12)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 5)).unwrap())
            .collect();
        for window in [
            WindowStrategy::AllPairs,
            WindowStrategy::sliding(2),
            WindowStrategy::sliding(4),
        ] {
            let builder = GraphBuilder::new().window(window);
            let mut acc = GraphAccumulator::new();
            for (k, q) in log.iter().enumerate() {
                assert_eq!(builder.extend(&mut acc, q.clone()), k);
                // Every intermediate prefix matches the batch build of that prefix.
                assert_eq!(acc.to_graph(), builder.build(log[..=k].to_vec()));
            }
            assert_eq!(acc.stats(), acc.to_graph().stats());
            assert_eq!(acc.len(), log.len());
        }
    }

    #[test]
    fn extend_batch_matches_per_query_extends() {
        let log: Vec<Node> = (0..40)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 7)).unwrap())
            .collect();
        for parallel in [false, true] {
            let builder = GraphBuilder::new()
                .window(WindowStrategy::AllPairs)
                .parallel(parallel);
            let mut bulk = GraphAccumulator::new();
            // Two bulk appends (the second exercises a non-zero row offset in the parallel
            // fan-out) must equal forty single extends.
            assert_eq!(builder.extend_batch(&mut bulk, log[..25].to_vec()), 0..25);
            assert_eq!(builder.extend_batch(&mut bulk, log[25..].to_vec()), 25..40);
            let mut single = GraphAccumulator::new();
            for q in &log {
                builder.extend(&mut single, q.clone());
            }
            assert_eq!(bulk.to_graph(), single.to_graph());
        }
    }

    #[test]
    fn memoized_builds_are_byte_identical_to_unmemoized_builds() {
        // A duplicate-heavy log: 30 queries over 5 distinct shapes, in a mixing order.
        let log: Vec<Node> = (0..30)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", (i * 7) % 5)).unwrap())
            .collect();
        for window in [
            WindowStrategy::AllPairs,
            WindowStrategy::sliding(2),
            WindowStrategy::sliding(5),
        ] {
            for policy in [AncestorPolicy::LcaPruned, AncestorPolicy::Full] {
                for parallel in [false, true] {
                    let base = GraphBuilder::new()
                        .window(window)
                        .policy(policy)
                        .parallel(parallel);
                    let on = base.clone().memoize(true).build(&log);
                    let off = base.memoize(false).build(&log);
                    assert_eq!(on, off, "{window:?} {policy:?} parallel={parallel}");
                }
            }
        }
    }

    #[test]
    fn memoized_extends_persist_the_memo_and_match_unmemoized_extends() {
        let log: Vec<Node> = (0..24)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 4)).unwrap())
            .collect();
        let builder = GraphBuilder::new().window(WindowStrategy::AllPairs);
        let mut memoized = GraphAccumulator::new();
        let mut plain = GraphAccumulator::new();
        for q in &log {
            builder.extend(&mut memoized, q.clone());
            builder.clone().memoize(false).extend(&mut plain, q.clone());
        }
        assert_eq!(memoized.to_graph(), plain.to_graph());
        // 4 distinct shapes seen across all pushes: each ordered shape pair is fully
        // aligned at most three times (singleton era, one seen-once sighting, the memoized
        // computation) — so at most 3·4·3 alignments ever ran, although 24·23/2 log pairs
        // were enumerated.
        assert_eq!(memoized.distinct(), 4);
        assert!(
            memoized.memo().alignments() <= 3 * 4 * 3,
            "{}",
            memoized.memo().alignments()
        );
        // The arena-backed row storage is maintained with the memo off too (it *is* the
        // accumulator's query log), but the unmemoized accumulator never memoized a pair.
        assert_eq!(plain.distinct(), 4);
        assert_eq!(plain.memo().memoized_pairs(), 0);
        // And a memoized extend picks up seamlessly after unmemoized ones.
        builder.extend(&mut plain, log[0].clone());
        assert_eq!(plain.distinct(), 4);
        builder.extend(&mut memoized, log[0].clone());
        assert_eq!(memoized.to_graph(), plain.to_graph());
    }

    #[test]
    fn parallel_memoized_build_matches_serial_memoized_build() {
        // Enough distinct shapes (> 32 missing pairs) to cross the parallel pre-alignment
        // threshold.
        let log: Vec<Node> = (0..60)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 10)).unwrap())
            .collect();
        let serial = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(false)
            .build(&log);
        let parallel = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(true)
            .build(&log);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pi_threads_values_parse_as_positive_overrides() {
        assert_eq!(parse_thread_override("4"), Ok(Some(4)));
        assert_eq!(parse_thread_override(" 2 "), Ok(Some(2)));
        assert_eq!(parse_thread_override("1"), Ok(Some(1)));
        // 0 and empty are deliberate "no override" spellings.
        assert_eq!(parse_thread_override("0"), Ok(None));
        assert_eq!(parse_thread_override(""), Ok(None));
        assert_eq!(parse_thread_override("  "), Ok(None));
    }

    #[test]
    fn malformed_pi_threads_values_are_flagged_not_swallowed() {
        // Garbage is an *error*, distinct from the unset-like spellings above, so the env
        // reader can warn once instead of silently ignoring an operator's typo.
        for junk in [
            "auto",
            "-2",
            "four",
            "4x",
            "1.5",
            "0x4",
            "+",
            "9999999999999999999999",
        ] {
            assert_eq!(parse_thread_override(junk), Err(()), "junk input {junk:?}");
        }
    }

    #[test]
    fn forced_thread_counts_build_identical_graphs() {
        // Real multi-worker runs even on a single-core host: an explicit count spawns that
        // many workers, and the steal-seed hook pushes every pair through the scheduler.
        let log: Vec<Node> = (0..30)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", (i * 5) % 9)).unwrap())
            .collect();
        for window in [WindowStrategy::AllPairs, WindowStrategy::sliding(4)] {
            for memoize in [true, false] {
                let reference = GraphBuilder::new()
                    .window(window)
                    .memoize(memoize)
                    .threads(1)
                    .build(&log);
                for threads in 2..=8 {
                    let forced = GraphBuilder::new()
                        .window(window)
                        .memoize(memoize)
                        .threads(threads)
                        .steal_seed(Some(threads as u64 * 977))
                        .build(&log);
                    assert_eq!(forced, reference, "{window:?} memo={memoize} t={threads}");
                }
            }
        }
    }

    #[test]
    fn steal_seed_forces_the_scheduler_through_interleaved_extends() {
        let log: Vec<Node> = (0..12)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 4)).unwrap())
            .collect();
        for memoize in [true, false] {
            let serial = GraphBuilder::new()
                .window(WindowStrategy::AllPairs)
                .memoize(memoize)
                .build(&log);
            let builder = GraphBuilder::new()
                .window(WindowStrategy::AllPairs)
                .memoize(memoize)
                .threads(3)
                .steal_seed(Some(0xfeed));
            let mut acc = GraphAccumulator::new();
            // Single-query pushes normally stay serial; the seed drags even those through
            // the scheduler, so this exercises one-row block mining too.
            for q in &log {
                builder.extend(&mut acc, q.clone());
            }
            assert_eq!(acc.to_graph(), serial, "memo={memoize}");
        }
    }

    #[test]
    fn explicit_threads_one_beats_the_parallel_flag() {
        // threads(1) forces the serial path even with parallel(true); the output is the
        // same either way — this pins the precedence, not the bytes.
        let log: Vec<Node> = (0..20)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {i}")).unwrap())
            .collect();
        let a = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(true)
            .threads(1)
            .build(&log);
        let b = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(&log);
        assert_eq!(a, b);
    }

    #[test]
    fn edge_diffs_reference_leaf_records_only() {
        let log: Vec<Node> = vec![
            parse("SELECT sales FROM t WHERE cty = 'USA'").unwrap(),
            parse("SELECT costs FROM t WHERE cty = 'EUR'").unwrap(),
        ];
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .policy(AncestorPolicy::Full)
            .build(log);
        assert_eq!(g.edges().len(), 1);
        for id in &g.edges()[0].diffs {
            assert!(g.store().get(*id).is_leaf);
        }
        // Ancestor records are still in the store for the mapper to consider.
        assert!(g.store().iter().any(|(_, r)| !r.is_leaf));
    }
}
