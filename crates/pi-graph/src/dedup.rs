//! Duplicate collapsing and alignment memoization: the machinery that makes AllPairs mining
//! cost `O(d²)` alignments over the `d` *distinct* tree shapes of a log instead of `O(n²)`
//! over its `n` queries.
//!
//! Real query logs are overwhelmingly repetitive — a handful of distinct query shapes
//! accounts for most of a log (the paper's SDSS/SQLShare samples, the Archive Query Log
//! study) — yet pairwise alignment depends only on tree *structure*.  So the builder
//! collapses the log to its distinct shapes at ingest ([`DedupTable`]) and runs the
//! expensive ordered-tree alignment once per *recurring* distinct ordered pair
//! ([`DiffMemo`]), re-wrapping the memoized index-free change list into concrete `(i, j)`
//! records per log pair.  Both layers are invisible in the output: graphs, stores,
//! `DiffId` offsets and edges are byte-identical with the memo on or off — only the work
//! to produce them changes.

use pi_ast::Node;
use pi_diff::{extract_changes, AncestorPolicy, TreeChange};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A structural deduplication table over an append-only query log.
///
/// Each ingested query maps to a *distinct-tree id* (its equivalence class under structural
/// equality); the first query observed with a given shape becomes the class
/// **representative**, and every later duplicate resolves to the same id in O(1) expected
/// time via the memoized [`Node::structural_hash`].
///
/// # Hash-collision fallback contract
///
/// Classes are bucketed by the 64-bit structural hash, but the hash alone never decides
/// membership: on a bucket hit the candidate class's representative is compared with full
/// [`Node`] equality (`PartialEq` verifies kind, attributes and children whenever hashes
/// agree), so two structurally *distinct* trees that collide in the hash are kept as two
/// distinct classes.  This is load-bearing for the memoized builder's byte-identity
/// guarantee: if colliding shapes were merged, alignments for *other* pairs involving the
/// swallowed shape would run against the wrong representative and produce records a
/// memo-off build would not.  (The aligner's own `same_tree` short-circuit still treats a
/// colliding *pair* as equal — that tolerance is the paper's, shared by the memo-off path,
/// so the outputs agree there too.)
#[derive(Debug, Clone, Default)]
pub struct DedupTable {
    /// Canonical representative per class, indexed by distinct-tree id: the first query of
    /// that shape to be ingested (a refcount bump, never a tree copy).
    classes: Vec<Node>,
    /// How many ingested queries each class has absorbed.
    counts: Vec<u32>,
    /// Node count of each class representative, measured once at class creation.  The
    /// parallel scheduler's cost model ([`pi_diff::align_cost_model`]) reads these on every
    /// enumerated pair, and [`Node::size`] is an `O(tree)` walk — caching it here turns the
    /// per-pair estimate into two array loads and a multiply.
    sizes: Vec<u32>,
    /// Structural hash → ids of the classes whose representatives carry that hash.  The
    /// bucket has one entry except under a 64-bit collision.  Keyed by the memoized
    /// structural hash — already well-mixed — through a single splitmix round instead of
    /// SipHash: ingest sits on the per-query hot path.
    by_hash: HashMap<u64, Bucket, BuildHasherDefault<PairKeyHasher>>,
    /// Distinct-tree id per ingested query, in log order.
    class_of: Vec<u32>,
    /// Running Σ of `sizes` — total nodes retained across all class representatives, so the
    /// memory-footprint estimate is an O(1) read rather than an O(d) sum per poll.
    arena_nodes: usize,
}

/// Rough per-node heap footprint of a retained tree, in bytes: one `NodeInner` (kind,
/// hashes, attr/children vector headers) plus its `Arc` header and amortised attribute
/// entries.  Attribute *strings* are interned process-wide (`pi_ast::IStr`) and therefore
/// excluded — they are accounted once globally, not per retained tree.
const NODE_FOOTPRINT_ESTIMATE: usize = 128;

/// Bookkeeping bytes per distinct class: the `classes`/`counts`/`sizes` entries plus the
/// hash-bucket slot.
const CLASS_OVERHEAD_ESTIMATE: usize = 64;

/// A bucket of class ids sharing one structural hash: inline for the overwhelmingly common
/// collision-free case (no heap allocation per distinct shape), a `Vec` under a real 64-bit
/// collision.
#[derive(Debug, Clone)]
enum Bucket {
    One(u32),
    Colliding(Vec<u32>),
}

impl Bucket {
    fn ids(&self) -> &[u32] {
        match self {
            Bucket::One(id) => std::slice::from_ref(id),
            Bucket::Colliding(ids) => ids,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Colliding(vec![*first, id]),
            Bucket::Colliding(ids) => ids.push(id),
        }
    }
}

impl DedupTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests the next query of the log, returning its distinct-tree id.
    pub fn ingest(&mut self, query: &Node) -> u32 {
        self.ingest_hashed(query.structural_hash(), query)
    }

    /// [`DedupTable::ingest`] with the bucket hash supplied by the caller — the test seam
    /// that lets the collision fallback be exercised without manufacturing a real 64-bit
    /// collision.
    pub(crate) fn ingest_hashed(&mut self, hash: u64, query: &Node) -> u32 {
        let fresh = u32::try_from(self.classes.len()).expect("fewer than 2^32 shapes");
        let class = match self.by_hash.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                // Full equality on every bucket probe: the hash routed us here, the
                // representative decides (see the collision contract above).
                match slot
                    .get()
                    .ids()
                    .iter()
                    .copied()
                    .find(|&c| self.classes[c as usize] == *query)
                {
                    Some(class) => {
                        self.counts[class as usize] += 1;
                        class
                    }
                    None => {
                        slot.get_mut().push(fresh);
                        self.classes.push(query.clone());
                        self.counts.push(1);
                        let size = measured_size(query);
                        self.sizes.push(size);
                        self.arena_nodes += size as usize;
                        fresh
                    }
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Bucket::One(fresh));
                self.classes.push(query.clone());
                self.counts.push(1);
                let size = measured_size(query);
                self.sizes.push(size);
                self.arena_nodes += size as usize;
                fresh
            }
        };
        self.class_of.push(class);
        class
    }

    /// Number of queries ingested so far.
    pub fn len(&self) -> usize {
        self.class_of.len()
    }

    /// True when no query has been ingested.
    pub fn is_empty(&self) -> bool {
        self.class_of.is_empty()
    }

    /// Number of distinct tree shapes observed so far (`d ≤ n`).
    pub fn distinct(&self) -> usize {
        self.classes.len()
    }

    /// The distinct-tree id of the query at log index `idx`.
    pub fn class_of(&self, idx: usize) -> u32 {
        self.class_of[idx]
    }

    /// How many ingested queries share the shape of class `class` (≥ 1).
    pub fn count(&self, class: u32) -> u32 {
        self.counts[class as usize]
    }

    /// The canonical representative of a class: the first ingested query of that shape.
    pub fn representative(&self, class: u32) -> &Node {
        &self.classes[class as usize]
    }

    /// Node count of the class representative, cached at class creation — the input to the
    /// parallel scheduler's per-pair cost estimate ([`pi_diff::align_cost_model`]).
    pub fn tree_size(&self, class: u32) -> usize {
        self.sizes[class as usize] as usize
    }

    /// Total nodes retained across all class representatives (Σ of [`DedupTable::tree_size`]
    /// over the classes; an O(1) read of a running sum).
    pub fn arena_nodes(&self) -> usize {
        self.arena_nodes
    }

    /// Estimated heap bytes this table retains: the distinct-tree arena (grows with the
    /// number of distinct shapes `d`) plus the 4-byte per-row class index (grows with log
    /// length `n` — the *only* per-row term).  O(1); the estimate is documented on the
    /// constants, not measured, so it is stable across allocators.
    pub fn footprint_bytes(&self) -> usize {
        self.arena_nodes * NODE_FOOTPRINT_ESTIMATE
            + self.classes.len() * CLASS_OVERHEAD_ESTIMATE
            + self.class_of.len() * std::mem::size_of::<u32>()
    }
}

/// A tree's node count saturated into the cache's `u32` (a tree of ≥ 2³² nodes would not
/// fit in memory anyway; saturation merely caps the cost estimate).
fn measured_size(query: &Node) -> u32 {
    u32::try_from(query.size()).unwrap_or(u32::MAX)
}

/// A memoized alignment: the index-free change list of one ordered distinct pair, stored
/// *pre-partitioned* — leaf changes first, ancestors after, each side in extraction order.
/// That is exactly the stable partition the graph's append step applies per pair, so the
/// builder can stream a memoized entry straight into the diff store (leaf ids are the first
/// `leaf_count` appended ids) without re-partitioning per log pair.
///
/// Each change is individually `Arc`-allocated so a log pair's [`pi_diff::DiffRecord`]s
/// can *share* the payloads (`DiffRecord::from_shared`): stamping a memoized pair into the
/// store costs one refcount bump and a 4-word write per record.
#[derive(Debug, Clone)]
pub(crate) struct PairChanges {
    changes: Arc<[Arc<TreeChange>]>,
    leaf_count: usize,
}

impl PairChanges {
    /// Rebuilds an entry from persisted parts: already-shared payloads in stored order
    /// (leaves first) and the leaf count.  The snapshot codec's restore path.
    pub(crate) fn from_shared_parts(changes: Vec<Arc<TreeChange>>, leaf_count: usize) -> Self {
        PairChanges {
            changes: changes.into(),
            leaf_count,
        }
    }

    pub(crate) fn from_changes(changes: Vec<TreeChange>) -> Self {
        let (leaves, ancestors): (Vec<TreeChange>, Vec<TreeChange>) =
            changes.into_iter().partition(|c| c.is_leaf);
        let leaf_count = leaves.len();
        let shared: Vec<Arc<TreeChange>> =
            leaves.into_iter().chain(ancestors).map(Arc::new).collect();
        PairChanges {
            changes: shared.into(),
            leaf_count,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Leaves first, ancestors after (both in extraction order).
    pub(crate) fn changes(&self) -> &[Arc<TreeChange>] {
        &self.changes
    }

    pub(crate) fn leaf_count(&self) -> usize {
        self.leaf_count
    }
}

/// A fast, deterministic hasher for the `(u32, u32)` class-pair keys (packed into one
/// `u64`): a single splitmix64 round instead of SipHash, since the hot loop performs one
/// memo probe per enumerated log pair.
#[derive(Default)]
pub(crate) struct PairKeyHasher(u64);

impl Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("pair keys hash through write_u64");
    }

    fn write_u64(&mut self, key: u64) {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

pub(crate) fn pair_key(ca: u32, cb: u32) -> u64 {
    (u64::from(ca) << 32) | u64::from(cb)
}

/// The alignment memo: the index-free change list per *recurring* distinct ordered pair of
/// tree shapes already aligned.  The class vocabulary itself lives in the accumulator's
/// [`DedupTable`] — the memo holds only derived alignments, so the admission and lookup
/// methods borrow the table per call instead of owning a second copy of the log's shapes.
///
/// Keys are **ordered** `(source class, target class)` pairs, not unordered sets: the
/// aligner's LCS tie-breaking is direction-sensitive (and change paths are expressed in
/// source-tree coordinates), so deriving the reverse direction from a forward alignment
/// could produce a change list a memo-off `extract_diffs(b, a, …)` would not — breaking the
/// byte-identity contract.  An ordered memo costs at most twice the unordered pair count
/// and keeps the guarantee unconditional; the alignment budget is still `O(d²)`, not
/// `O(n²)`.
///
/// Admission is tiered by demonstrated repetition, because a memo entry only ever pays off
/// if its pair is looked up again:
///
/// * both shapes duplicated → memoize on first encounter (a duplicate-heavy log ingested
///   as a batch collapses straight to `O(d²)` alignments);
/// * exactly one shape duplicated → align directly on the first sighting and memoize on
///   the second (a seen-once set), so a mostly-distinct walk never builds entries its
///   window will not revisit;
/// * both shapes singletons → always align directly, exactly like a memo-off build (the
///   pair cannot have occurred before), keeping fully-distinct adversarial logs at
///   memo-off speed.
///
/// Each ordered distinct pair is therefore fully aligned at most three times (singleton
/// era, one seen-once sighting, the memoized computation) — still `O(d²)` total — and hit
/// from the memo ever after.
///
/// Entries are computed under one [`AncestorPolicy`]; mining with a different policy
/// discards them (they would describe different ancestor closures).
///
/// Cloning a memo is cheap: representatives and change lists are `Arc`-shared, so a forked
/// streaming session keeps the alignments mined so far without copying a tree.
#[derive(Debug, Clone, Default)]
pub struct DiffMemo {
    pairs: HashMap<u64, PairChanges, BuildHasherDefault<PairKeyHasher>>,
    /// Ordered pairs sighted exactly once with one duplicated side — the candidates that
    /// graduate into `pairs` on their next sighting.
    seen_once: HashSet<u64, BuildHasherDefault<PairKeyHasher>>,
    policy: Option<AncestorPolicy>,
    alignments: usize,
}

impl DiffMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ordered distinct pairs whose alignment is memoized.
    pub fn memoized_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of full alignments (`extract_changes` / `extract_diffs` runs) performed
    /// through the memoized mining path — the work term duplicate collapsing bounds by
    /// `O(d²)` (at most three per distinct ordered pair; see the admission tiers above)
    /// regardless of how many log pairs were enumerated.  (Alignments run inside parallel
    /// fan-out workers for non-memoized pairs are not tracked; the serial path and the
    /// parallel pre-computation are.)
    pub fn alignments(&self) -> usize {
        self.alignments
    }

    /// Pins the ancestor policy, discarding memoized pairs computed under a different one.
    pub(crate) fn set_policy(&mut self, policy: AncestorPolicy) {
        if self.policy != Some(policy) {
            self.pairs.clear();
            self.seen_once.clear();
            self.policy = Some(policy);
        }
    }

    /// Decides whether a pair *missing from the memo* should be memoized now (`true`) or
    /// aligned directly this once (`false`) — the tiered admission policy described on
    /// [`DiffMemo`].  Stateful: a one-duplicated-side pair is recorded on its first
    /// sighting and admitted on its second.  `dedup` is the accumulator's class table the
    /// pair's ids come from.
    pub(crate) fn admit(&mut self, dedup: &DedupTable, ca: u32, cb: u32) -> bool {
        let (na, nb) = (dedup.count(ca), dedup.count(cb));
        if na > 1 && nb > 1 {
            return true;
        }
        if na == 1 && nb == 1 {
            // Two singleton shapes: this is the pair's first possible occurrence, and a
            // second would require a duplicate (which bumps a count) — skip the set.
            return false;
        }
        !self.seen_once.insert(pair_key(ca, cb))
    }

    /// The memoized entry for the ordered pair `(ca, cb)`, if present.
    pub(crate) fn get(&self, ca: u32, cb: u32) -> Option<&PairChanges> {
        self.pairs.get(&pair_key(ca, cb))
    }

    /// The memoized entry for the ordered pair `(ca, cb)`, aligning the class
    /// representatives on a miss.  Callers must have pinned the policy via `set_policy`.
    pub(crate) fn changes(
        &mut self,
        dedup: &DedupTable,
        ca: u32,
        cb: u32,
        policy: AncestorPolicy,
    ) -> PairChanges {
        debug_assert_eq!(self.policy, Some(policy), "set_policy before changes");
        if let Some(changes) = self.pairs.get(&pair_key(ca, cb)) {
            return changes.clone();
        }
        let computed = PairChanges::from_changes(extract_changes(
            dedup.representative(ca),
            dedup.representative(cb),
            policy,
        ));
        self.alignments += 1;
        self.pairs.insert(pair_key(ca, cb), computed.clone());
        computed
    }

    /// Inserts an externally computed alignment (the parallel pre-computation path).
    pub(crate) fn insert(&mut self, ca: u32, cb: u32, changes: Vec<TreeChange>) {
        self.alignments += 1;
        self.pairs
            .insert(pair_key(ca, cb), PairChanges::from_changes(changes));
    }

    /// Counts a direct (unmemoized) alignment so [`DiffMemo::alignments`] reflects the
    /// serial mining path's full work term.
    pub(crate) fn count_direct_alignment(&mut self) {
        self.alignments += 1;
    }

    /// The pinned ancestor policy, if any (snapshot codec).
    pub(crate) fn pinned_policy(&self) -> Option<AncestorPolicy> {
        self.policy
    }

    /// Iterates the memoized `(pair key, entry)` pairs in arbitrary order (snapshot codec
    /// sorts by key before writing).
    pub(crate) fn pairs_iter(&self) -> impl Iterator<Item = (u64, &PairChanges)> {
        self.pairs.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates the seen-once pair keys in arbitrary order.
    pub(crate) fn seen_once_iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seen_once.iter().copied()
    }

    /// Rebuilds a memo from persisted parts — pinned policy, lifetime alignment count,
    /// memoized pairs and the seen-once admission set.  The snapshot codec's restore path:
    /// a restored memo is *warm*, so the first post-restore push aligns only genuinely new
    /// pairs.
    pub(crate) fn from_parts(
        policy: Option<AncestorPolicy>,
        alignments: usize,
        pairs: impl IntoIterator<Item = (u64, PairChanges)>,
        seen_once: impl IntoIterator<Item = u64>,
    ) -> Self {
        DiffMemo {
            pairs: pairs.into_iter().collect(),
            seen_once: seen_once.into_iter().collect(),
            policy,
            alignments,
        }
    }

    /// Estimated heap bytes the memo retains: a fixed overhead per memoized pair (table
    /// slot, key, entry headers) plus the shared-payload pointers of each change list, and
    /// the seen-once admission set.  Payload subtrees alias the distinct-tree arena and are
    /// excluded here.  O(pairs) — the memo is bounded by distinct ordered pairs, not rows.
    pub fn footprint_bytes(&self) -> usize {
        /// Table slot + packed key + `PairChanges` headers + `Arc` control block.
        const PAIR_OVERHEAD_ESTIMATE: usize = 64;
        /// One shared-payload `Arc` pointer plus its amortised change-header share.
        const CHANGE_PTR_ESTIMATE: usize = 16;
        /// One seen-once key in its set slot.
        const SEEN_ONCE_ESTIMATE: usize = 16;
        let change_ptrs: usize = self.pairs.values().map(|p| p.changes().len()).sum();
        self.pairs.len() * PAIR_OVERHEAD_ESTIMATE
            + change_ptrs * CHANGE_PTR_ESTIMATE
            + self.seen_once.len() * SEEN_ONCE_ESTIMATE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;

    fn parse(sql: &str) -> Node {
        pi_sql::SqlFrontend.parse_one(sql).unwrap()
    }

    #[test]
    fn duplicates_collapse_to_one_class_with_the_first_occurrence_as_representative() {
        let mut table = DedupTable::new();
        let a = parse("SELECT a FROM t WHERE x = 1");
        let a_again = parse("SELECT a FROM t WHERE x = 1");
        let b = parse("SELECT a FROM t WHERE x = 2");
        assert_eq!(table.ingest(&a), 0);
        assert_eq!(table.ingest(&b), 1);
        assert_eq!(table.ingest(&a_again), 0);
        assert_eq!((table.len(), table.distinct()), (3, 2));
        assert_eq!(table.class_of(2), table.class_of(0));
        assert_eq!((table.count(0), table.count(1)), (2, 1));
        // The representative is the *first* ingested query — physically, not just
        // structurally (a refcount bump of `a`, not of `a_again`).
        assert!(table.representative(0).ptr_eq(&a));
        assert!(!table.is_empty());
    }

    #[test]
    fn class_tree_sizes_are_cached_at_ingest() {
        let mut table = DedupTable::new();
        let a = parse("SELECT a FROM t WHERE x = 1");
        let b = parse("SELECT a, b, c FROM t WHERE x = 1 AND y = 2");
        table.ingest(&a);
        table.ingest(&b);
        table.ingest(&a);
        assert_eq!(table.tree_size(0), a.size());
        assert_eq!(table.tree_size(1), b.size());
        assert!(table.tree_size(1) > table.tree_size(0));
    }

    #[test]
    fn hash_collisions_fall_back_to_full_equality_and_stay_distinct() {
        // Two structurally different trees forced into the same bucket must come out as two
        // classes: the bucket scan compares representatives with full `Node` equality.
        let mut table = DedupTable::new();
        let a = parse("SELECT a FROM t WHERE x = 1");
        let b = parse("SELECT b FROM u WHERE y = 2");
        let forced = 0xdead_beef;
        assert_eq!(table.ingest_hashed(forced, &a), 0);
        assert_eq!(table.ingest_hashed(forced, &b), 1);
        assert_eq!(table.distinct(), 2);
        // And re-probing the shared bucket still resolves each shape to its own class.
        assert_eq!(table.ingest_hashed(forced, &a), 0);
        assert_eq!(table.ingest_hashed(forced, &b), 1);
        assert_eq!((table.count(0), table.count(1)), (2, 2));
    }

    #[test]
    fn collision_buckets_resolve_ten_thousand_distinct_shapes() {
        // Trace-scale collision pressure: 10 000 distinct trees forced into 8-way 64-bit
        // collision buckets (1 250 buckets, every probe scanning up to 8 representatives
        // with full equality), each shape ingested twice.  Class ids must be dense and
        // first-come, the second pass must resolve every shape to its existing class, and
        // the arena must hold exactly the distinct trees — collision fallback may never
        // mint a duplicate class or merge two shapes.
        use pi_ast::builder::SelectBuilder;
        const SHAPES: usize = 10_000;
        let shapes: Vec<Node> = (0..SHAPES)
            .map(|i| {
                SelectBuilder::new()
                    .project(Node::column("a"))
                    .from_table("t")
                    .where_pred(SelectBuilder::eq(Node::column("x"), Node::int(i as i64)))
                    .build()
            })
            .collect();
        let mut table = DedupTable::new();
        for (i, query) in shapes.iter().enumerate() {
            assert_eq!(table.ingest_hashed((i / 8) as u64, query), i as u32);
        }
        for (i, query) in shapes.iter().enumerate() {
            assert_eq!(table.ingest_hashed((i / 8) as u64, query), i as u32);
        }
        assert_eq!((table.len(), table.distinct()), (2 * SHAPES, SHAPES));
        for (class, shape) in shapes.iter().enumerate() {
            assert_eq!(table.count(class as u32), 2);
            // Representatives are the first pass's trees, physically.
            assert!(table.representative(class as u32).ptr_eq(shape));
        }
        // Row → class mapping covers both passes.
        assert_eq!(table.class_of(SHAPES + 1_234), 1_234);
    }

    #[test]
    fn memo_aligns_each_recurring_ordered_pair_once_and_matches_extract_diffs() {
        let queries = vec![
            parse("SELECT a FROM t WHERE x = 1"),
            parse("SELECT a FROM t WHERE x = 2"),
            parse("SELECT a FROM t WHERE x = 1"),
            parse("SELECT a FROM t WHERE x = 2"),
        ];
        let mut dedup = DedupTable::new();
        for query in &queries {
            dedup.ingest(query);
        }
        let mut memo = DiffMemo::new();
        let policy = AncestorPolicy::LcaPruned;
        memo.set_policy(policy);
        assert_eq!(dedup.distinct(), 2);
        for j in 1..queries.len() {
            for i in 0..j {
                let (ca, cb) = (dedup.class_of(i), dedup.class_of(j));
                if ca == cb {
                    continue;
                }
                // Both shapes appear twice in the ingested log: immediate admission.
                assert!(memo.admit(&dedup, ca, cb));
                let entry = memo.changes(&dedup, ca, cb, policy);
                // The memoized entry is the stable leaf/ancestor partition of the direct
                // extraction — exactly what the graph's append step would produce.
                let records: Vec<_> = entry.changes().iter().map(|c| c.to_record(i, j)).collect();
                let direct = pi_diff::extract_diffs(&queries[i], &queries[j], i, j, policy);
                let (leaves, ancestors): (Vec<_>, Vec<_>) =
                    direct.into_iter().partition(|r| r.is_leaf);
                assert_eq!(entry.leaf_count(), leaves.len());
                let expected: Vec<_> = leaves.into_iter().chain(ancestors).collect();
                assert_eq!(records, expected);
                assert!(!entry.is_empty());
            }
        }
        // Four differing log pairs, but only the two recurring ordered distinct pairs were
        // ever aligned.
        assert_eq!(memo.alignments(), 2);
        assert_eq!(memo.memoized_pairs(), 2);
    }

    #[test]
    fn admission_is_tiered_by_demonstrated_repetition() {
        let queries = vec![
            parse("SELECT a FROM t WHERE x = 1"),
            parse("SELECT a FROM t WHERE x = 2"),
            parse("SELECT a FROM t WHERE x = 1"),
        ];
        // Two singleton shapes: never admitted (the pair cannot have occurred before).
        let mut two = DedupTable::new();
        two.ingest(&queries[0]);
        two.ingest(&queries[1]);
        let mut singletons = DiffMemo::new();
        assert!(!singletons.admit(&two, 0, 1));
        assert!(!singletons.admit(&two, 0, 1));
        // One duplicated side: first sighting aligns directly, second admits.
        let mut dedup = DedupTable::new();
        for query in &queries {
            dedup.ingest(query);
        }
        let mut memo = DiffMemo::new();
        let (dup, single) = (dedup.class_of(0), dedup.class_of(1));
        assert!(!memo.admit(&dedup, dup, single));
        assert!(memo.admit(&dedup, dup, single));
        // The reverse ordered pair tracks its own sightings.
        assert!(!memo.admit(&dedup, single, dup));
        assert!(memo.admit(&dedup, single, dup));
    }

    #[test]
    fn changing_the_ancestor_policy_discards_memoized_pairs() {
        let queries = vec![
            parse("SELECT a FROM t WHERE x = 1"),
            parse("SELECT a FROM t WHERE x = 2"),
            parse("SELECT a FROM t WHERE x = 1"),
        ];
        let mut dedup = DedupTable::new();
        for query in &queries {
            dedup.ingest(query);
        }
        let mut memo = DiffMemo::new();
        memo.set_policy(AncestorPolicy::LcaPruned);
        let pruned = memo.changes(&dedup, 0, 1, AncestorPolicy::LcaPruned);
        memo.set_policy(AncestorPolicy::Full);
        assert_eq!(memo.memoized_pairs(), 0);
        let full = memo.changes(&dedup, 0, 1, AncestorPolicy::Full);
        assert!(full.changes().len() > pruned.changes().len());
    }
}
