//! A deque-based work-stealing scheduler for cost-sized mining blocks.
//!
//! The builder's parallel paths cut their pair workload into *blocks* — contiguous runs of
//! the serial enumeration order, sized by estimated alignment cost — and execute them here.
//! Each worker owns a local deque of block indices: it pops work from the front of its own
//! deque (preserving locality with the initial contiguous deal) and, when dry, steals from
//! the *back* of a victim's deque, so a worker stuck on one oversized block sheds the rest
//! of its span to idle peers.  Workers exit once every deque is empty, which is a sound
//! termination condition because blocks are dealt once up front and never re-enter a deque.
//!
//! # Determinism contract
//!
//! **Block order, not steal order, defines the output.**  Every block writes its result
//! into a dedicated slot indexed by its position in the deterministic global block order
//! (the serial enumeration order the caller built the blocks in), and [`run_blocks`]
//! returns the slots in exactly that order after all workers join.  Steal interleaving —
//! which worker executes which block, and when — therefore cannot influence what the caller
//! observes; it only redistributes wall-clock work.  This is what makes the parallel graph
//! build byte-identical to the serial one for every thread count and every steal schedule,
//! a property the test suites pin under seeded perturbation (see
//! [`GraphBuilder::steal_seed`](crate::GraphBuilder::steal_seed)).

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// One splitmix64 round: the deterministic PRNG behind seeded steal-order perturbation.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Packs `items` (already in the deterministic output order) into contiguous blocks whose
/// estimated costs approach `target` without splitting any item.  Every block except
/// possibly the last is non-empty and the concatenation of the blocks is exactly `items` —
/// packing never reorders, so merging block results in block order reproduces the serial
/// order regardless of how blocks are scheduled.
pub(crate) fn pack_by_cost<I>(items: Vec<I>, cost: impl Fn(&I) -> u64, target: u64) -> Vec<Vec<I>> {
    let target = target.max(1);
    let mut blocks = Vec::new();
    let mut current = Vec::new();
    let mut accumulated = 0u64;
    for item in items {
        let c = cost(&item).max(1);
        if !current.is_empty() && accumulated.saturating_add(c) > target {
            blocks.push(std::mem::take(&mut current));
            accumulated = 0;
        }
        accumulated = accumulated.saturating_add(c);
        current.push(item);
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    blocks
}

/// Executes `work` over every block on up to `threads` work-stealing workers and returns
/// the results **in block order** (see the module-level determinism contract).
///
/// `seed` perturbs the schedule only: `None` deals contiguous spans of blocks to the
/// workers and scans steal victims in ring order; `Some(s)` deals blocks to pseudo-random
/// deques and rotates each worker's victim scan, exercising steal interleavings a natural
/// run would rarely hit.  The returned vector is identical for every `threads` and every
/// `seed` by construction.
pub(crate) fn run_blocks<B, T, F>(
    threads: usize,
    seed: Option<u64>,
    blocks: Vec<B>,
    work: F,
) -> Vec<T>
where
    B: Sync,
    T: Send + Sync,
    F: Fn(usize, &B) -> T + Sync,
{
    let block_count = blocks.len();
    if block_count == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, block_count);
    if workers == 1 {
        return blocks
            .iter()
            .enumerate()
            .map(|(idx, block)| work(idx, block))
            .collect();
    }
    // One result slot per block, written exactly once by whichever worker claims the block.
    let slots: Vec<OnceLock<T>> = std::iter::repeat_with(OnceLock::new)
        .take(block_count)
        .collect();
    let mut initial: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    for idx in 0..block_count {
        let owner = match seed {
            // Contiguous spans: worker w starts on blocks [w·n/t, (w+1)·n/t), the
            // cache-friendly deal matching the caller's block ordering.
            None => idx * workers / block_count,
            // Seeded deal: scatter blocks pseudo-randomly (some workers may start empty and
            // steal immediately — deliberately adversarial for the identity tests).
            Some(s) => (splitmix64(s ^ idx as u64) % workers as u64) as usize,
        };
        initial[owner].push_back(idx);
    }
    let deques: Vec<Mutex<VecDeque<usize>>> = initial.into_iter().map(Mutex::new).collect();
    {
        let (blocks, slots, deques, work) = (&blocks, &slots, &deques, &work);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let mut victims: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
                if let Some(s) = seed {
                    let rotation = splitmix64(s.wrapping_add(w as u64)) as usize % victims.len();
                    victims.rotate_left(rotation);
                }
                scope.spawn(move || loop {
                    let claimed = deques[w].lock().expect("own deque poisoned").pop_front();
                    let idx = match claimed {
                        Some(idx) => idx,
                        None => {
                            // Own deque dry: steal the *back* of the first non-empty victim.
                            match victims.iter().find_map(|&v| {
                                deques[v].lock().expect("victim deque poisoned").pop_back()
                            }) {
                                Some(idx) => idx,
                                // Every deque empty: no block can reappear, so we are done.
                                None => break,
                            }
                        }
                    };
                    if slots[idx].set(work(idx, &blocks[idx])).is_err() {
                        unreachable!("block {idx} executed twice");
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every dealt block is executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_by_cost_preserves_order_and_respects_target() {
        let items: Vec<u64> = (1..=20).collect();
        let blocks = pack_by_cost(items.clone(), |&c| c, 15);
        let flattened: Vec<u64> = blocks.iter().flatten().copied().collect();
        assert_eq!(flattened, items);
        // Every block but the last stops before exceeding the target by more than one item.
        for block in &blocks {
            assert!(!block.is_empty());
            let cost: u64 = block.iter().sum();
            assert!(cost <= 15 || block.len() == 1, "{block:?} costs {cost}");
        }
        assert!(blocks.len() > 1);
    }

    #[test]
    fn pack_by_cost_puts_oversized_items_in_singleton_blocks() {
        let blocks = pack_by_cost(vec![100u64, 1, 1, 100, 1], |&c| c, 10);
        assert_eq!(blocks[0], vec![100]);
        assert_eq!(blocks[1], vec![1, 1]);
        assert_eq!(blocks[2], vec![100]);
        assert_eq!(blocks[3], vec![1]);
    }

    #[test]
    fn zero_cost_items_still_make_progress() {
        let blocks = pack_by_cost(vec![(); 5], |_| 0, 2);
        assert_eq!(blocks.iter().map(Vec::len).sum::<usize>(), 5);
    }

    #[test]
    fn results_come_back_in_block_order_for_every_thread_count_and_seed() {
        let blocks: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = blocks.iter().map(|b| b * 2).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            for seed in [None, Some(0), Some(1), Some(0xdead_beef)] {
                let results = run_blocks(threads, seed, blocks.clone(), |idx, &b| {
                    assert_eq!(idx, b, "block index must match slot index");
                    b * 2
                });
                assert_eq!(results, expected, "threads={threads} seed={seed:?}");
            }
        }
    }

    #[test]
    fn every_block_runs_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let executions: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let blocks: Vec<usize> = (0..100).collect();
        run_blocks(7, Some(42), blocks, |_, &b| {
            executions[b].fetch_add(1, Ordering::SeqCst);
        });
        assert!(executions.iter().all(|e| e.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_block_costs_are_still_merged_deterministically() {
        // Simulate a triangular workload: later blocks cost more, so early finishers steal.
        let blocks: Vec<u64> = (0..24).collect();
        let serial = run_blocks(1, None, blocks.clone(), |_, &b| (0..b * 500).sum::<u64>());
        let stolen = run_blocks(6, Some(7), blocks, |_, &b| (0..b * 500).sum::<u64>());
        assert_eq!(serial, stolen);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let results: Vec<u8> = run_blocks(4, None, Vec::<u8>::new(), |_, &b| b);
        assert!(results.is_empty());
    }
}
