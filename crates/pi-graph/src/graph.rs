//! The interaction graph data structure.

use pi_ast::Node;
use pi_diff::{DiffId, DiffStore};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// A shared, immutable query log.
///
/// Every structure that needs the log (the graph, the generated interface, experiment
/// harnesses) holds one of these; cloning it copies a pointer, never the queries.
pub type QueryLog = Arc<[Node]>;

/// Conversion into a [`QueryLog`].
///
/// Owned vectors convert by *moving* their queries into the shared allocation; borrowed logs
/// are cloned once; an existing `QueryLog` (or a reference to one) is shared for free.
pub trait IntoQueryLog {
    /// Performs the conversion.
    fn into_query_log(self) -> QueryLog;

    /// Converts into an owned, *growable* log instead — what a streaming ingest appends to.
    ///
    /// Owned vectors move without any copy; everything else (including a `QueryLog`, whose
    /// nodes stay shared with the caller and therefore cannot be moved out) clones its
    /// queries once.
    fn into_query_vec(self) -> Vec<Node>;
}

impl IntoQueryLog for QueryLog {
    fn into_query_log(self) -> QueryLog {
        self
    }

    fn into_query_vec(self) -> Vec<Node> {
        self.to_vec()
    }
}

impl IntoQueryLog for &QueryLog {
    fn into_query_log(self) -> QueryLog {
        Arc::clone(self)
    }

    fn into_query_vec(self) -> Vec<Node> {
        self.to_vec()
    }
}

impl IntoQueryLog for Vec<Node> {
    fn into_query_log(self) -> QueryLog {
        Arc::from(self)
    }

    fn into_query_vec(self) -> Vec<Node> {
        self
    }
}

impl IntoQueryLog for &[Node] {
    fn into_query_log(self) -> QueryLog {
        Arc::from(self)
    }

    fn into_query_vec(self) -> Vec<Node> {
        self.to_vec()
    }
}

impl IntoQueryLog for &Vec<Node> {
    fn into_query_log(self) -> QueryLog {
        Arc::from(self.as_slice())
    }

    fn into_query_vec(self) -> Vec<Node> {
        self.clone()
    }
}

impl<const N: usize> IntoQueryLog for &[Node; N] {
    fn into_query_log(self) -> QueryLog {
        Arc::from(self.as_slice())
    }

    fn into_query_vec(self) -> Vec<Node> {
        self.to_vec()
    }
}

/// A labelled edge of the interaction graph: the interaction `t_k` (a set of leaf diffs)
/// transforms query `from` into query `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Index of the source query in the log.
    pub from: usize,
    /// Index of the target query in the log.
    pub to: usize,
    /// The leaf diff records making up the interaction.
    pub diffs: Vec<DiffId>,
}

/// Summary statistics about a graph, reported by the runtime experiments (Figures 11/12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of vertices (queries).
    pub queries: usize,
    /// Number of labelled edges.
    pub edges: usize,
    /// Number of materialised diff records (leaf + ancestors).
    pub diff_records: usize,
    /// Number of distinct paths across all records (the mapper's partition count).
    pub distinct_paths: usize,
}

/// The interaction graph: queries as vertices, interactions as labelled edges, plus the
/// shared arena of diff records the edges refer to.
///
/// The internals are kept behind accessors so that construction — batch or incremental —
/// stays the exclusive business of `GraphBuilder` / `GraphAccumulator`: a graph in hand is
/// always a consistent snapshot (every edge's `DiffId`s resolve in the store, every vertex
/// index resolves in the log).
///
/// Equality is *structural* over all three parts (query content, record-by-record store
/// contents in order, edge list in order) — exactly the "byte-identical graphs" contract
/// the determinism tests (parallel == serial, streaming == batch) assert.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InteractionGraph {
    /// The input queries, in log order, shared (not cloned) with whoever built the graph.
    pub(crate) queries: QueryLog,
    /// The arena of diff records (leaf and ancestor) discovered while diffing pairs.
    pub(crate) store: DiffStore,
    /// The labelled edges.
    pub(crate) edges: Vec<Edge>,
}

impl InteractionGraph {
    /// Assembles a graph from pre-built parts (the escape hatch for tests and external
    /// builders, e.g. merging per-shard mining results).  The parts are trusted to be
    /// consistent: edge endpoints must index into `queries` and edge diff ids into `store`.
    pub fn from_parts(queries: impl IntoQueryLog, store: DiffStore, edges: Vec<Edge>) -> Self {
        InteractionGraph {
            queries: queries.into_query_log(),
            store,
            edges,
        }
    }

    /// The input queries, in log order, shared (not cloned) with whoever built the graph.
    pub fn queries(&self) -> &QueryLog {
        &self.queries
    }

    /// The arena of diff records (leaf and ancestor) discovered while diffing pairs.
    pub fn store(&self) -> &DiffStore {
        &self.store
    }

    /// The labelled edges, in the order they were discovered (append order).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Summary statistics.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            queries: self.queries.len(),
            edges: self.edges.len(),
            diff_records: self.store.len(),
            distinct_paths: self.store.partition_by_path().len(),
        }
    }

    /// Edges incident to a query.
    pub fn edges_of(&self, query: usize) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(move |e| e.from == query || e.to == query)
    }

    /// True when every *distinct* query is reachable from the first query, treating edges as
    /// undirected (each interaction has an inverse).  Duplicate queries share their vertex's
    /// connectivity.
    pub fn is_connected(&self) -> bool {
        if self.queries.is_empty() {
            return true;
        }
        if self.edges.is_empty() {
            return self.queries.len() <= 1
                || self
                    .queries
                    .iter()
                    .all(|q| q.structural_hash() == self.queries[0].structural_hash());
        }
        let mut adjacent: Vec<Vec<usize>> = vec![Vec::new(); self.queries.len()];
        for e in &self.edges {
            adjacent[e.from].push(e.to);
            adjacent[e.to].push(e.from);
        }
        // Identical queries are implicitly connected (zero-cost self loop).
        let mut by_hash: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for (i, q) in self.queries.iter().enumerate() {
            by_hash.entry(q.structural_hash()).or_default().push(i);
        }
        for group in by_hash.values() {
            for pair in group.windows(2) {
                adjacent[pair[0]].push(pair[1]);
                adjacent[pair[1]].push(pair[0]);
            }
        }
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue = VecDeque::from([0usize]);
        seen.insert(0);
        while let Some(v) = queue.pop_front() {
            for &n in &adjacent[v] {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen.len() == self.queries.len()
    }

    /// The earliest query in the log, used as the interface's initial query `q0` (§4.4).
    pub fn initial_query(&self) -> Option<&Node> {
        self.queries.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_diff::{extract_diffs, AncestorPolicy};

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn tiny_graph() -> InteractionGraph {
        let q0 = parse("SELECT a FROM t WHERE x = 1").unwrap();
        let q1 = parse("SELECT a FROM t WHERE x = 2").unwrap();
        let q2 = parse("SELECT b FROM t WHERE x = 2").unwrap();
        let mut store = DiffStore::new();
        let mut edges = Vec::new();
        for (i, j) in [(0usize, 1usize), (1, 2)] {
            let qs = [&q0, &q1, &q2];
            let records = extract_diffs(qs[i], qs[j], i, j, AncestorPolicy::LcaPruned);
            let leaf_only: Vec<_> = records.iter().filter(|r| r.is_leaf).cloned().collect();
            let ids = store.extend(leaf_only);
            edges.push(Edge {
                from: i,
                to: j,
                diffs: ids,
            });
            store.extend(records.into_iter().filter(|r| !r.is_leaf));
        }
        InteractionGraph {
            queries: vec![q0, q1, q2].into(),
            store,
            edges,
        }
    }

    #[test]
    fn stats_count_vertices_edges_and_records() {
        let g = tiny_graph();
        let s = g.stats();
        assert_eq!(s.queries, 3);
        assert_eq!(s.edges, 2);
        assert!(s.diff_records >= 2);
        assert!(s.distinct_paths >= 2);
    }

    #[test]
    fn edges_of_filters_by_incidence() {
        let g = tiny_graph();
        assert_eq!(g.edges_of(0).count(), 1);
        assert_eq!(g.edges_of(1).count(), 2);
        assert_eq!(g.edges_of(2).count(), 1);
    }

    #[test]
    fn connectivity_and_initial_query() {
        let g = tiny_graph();
        assert!(g.is_connected());
        assert_eq!(
            g.initial_query().unwrap().structural_hash(),
            g.queries[0].structural_hash()
        );
        let empty = InteractionGraph::default();
        assert!(empty.is_connected());
        assert!(empty.initial_query().is_none());
    }
}
