//! Snapshot codec for the mining layer: dedup arena, alignment memo and the mined pair
//! table, round-tripped as one [`GraphAccumulator`] section.
//!
//! The wire layout leans on the workspace's mining invariants instead of re-encoding
//! derived state, so snapshot size scales with *distinct* state plus a few bytes per mined
//! pair — never with raw record volume:
//!
//! * **Dedup arena** — class representatives are written as node-table references in
//!   class-id order, followed by the per-row class ids.  Restore *re-ingests* each row's
//!   representative through [`DedupTable::ingest`], which deterministically reassigns the
//!   same first-come class ids and rebuilds every derived cache (hash buckets, counts,
//!   cached tree sizes, arena totals) — any divergence from the stored ids is reported as
//!   corruption rather than accepted.
//! * **Memo** — memoized pairs and the seen-once admission set, sorted by packed pair key
//!   so identical state always serializes to identical bytes.  A restored memo is warm:
//!   the first post-restore push aligns only genuinely new pairs.
//! * **Pair table** — the [`pi_diff::DiffStore`] and edge list are *not* serialized record
//!   by record.  By construction every compared pair appends one contiguous run (leaf
//!   records first, ancestors after) and one edge labelled with exactly that run's leaf
//!   ids, in the same order — the runs tile the store.  So each mined pair costs only its
//!   endpoints (delta-encoded) plus either a one-byte "replay the memo entry for this
//!   class pair" marker or, for runs whose payloads are not the memoized list (seen-once
//!   pairs, memo-off sessions), an explicit change-table index list.  A 100k-line session
//!   whose naïve record dump is >100 MB encodes in a few MB this way.
//!
//! Restore splits in two phases: [`read_accumulator_deferred`] decodes and validates the
//! distinct-scale sections (tables, dedup, memo) and returns the pair table as compact
//! [`LatentPairs`] bytes — only its leading counts are checked, since the run scan is the
//! dominant decode cost and the session layer's checksummed frame already rejects storage
//! corruption before this codec runs; [`hydrate_pairs`] performs the full
//! bounds-and-membership scan and expands the runs into the store and edge list when the
//! graph is actually needed.  [`read_accumulator`] chains both for callers that want the
//! eager (and eagerly validated) behaviour.

use crate::builder::GraphAccumulator;
use crate::dedup::{pair_key, DedupTable, DiffMemo, PairChanges};
use crate::graph::Edge;
use pi_ast::codec::{
    corrupt, put_u64, put_u8, put_varint, put_zigzag, read_node_table, CodecError, NodeTableBuilder,
};
use pi_diff::codec::{read_change_table, ChangeTableBuilder};
use pi_diff::{AncestorPolicy, DiffId, DiffRecord, TreeChange};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;

/// A run's payload source: replay the memo entry for the pair's classes, or an explicit
/// change-index list.
const RUN_MEMOIZED: u8 = 0;
const RUN_EXPLICIT: u8 = 1;

/// Writes the full mining state of an accumulator: node table, change table, dedup rows,
/// the alignment memo and the pair table.  Identical state writes identical bytes
/// (hash-map-ordered sections are sorted first, and run encoding is value-based, so a
/// restored accumulator re-persists to the same stream).
pub fn write_accumulator<W: Write>(w: &mut W, acc: &GraphAccumulator) -> Result<(), CodecError> {
    let mut nodes = NodeTableBuilder::new();
    let mut changes = ChangeTableBuilder::new();

    // Pre-pass: intern every tree and change payload so both tables are complete before
    // any section that references them is written.
    let dedup = &acc.dedup;
    let class_nodes: Vec<u32> = (0..dedup.distinct())
        .map(|class| nodes.intern(dedup.representative(class as u32)))
        .collect();
    let mut memo_pairs: Vec<(u64, &PairChanges)> = acc.memo.pairs_iter().collect();
    memo_pairs.sort_unstable_by_key(|(key, _)| *key);
    let memo_entries: Vec<(u64, Vec<u32>, usize)> = memo_pairs
        .into_iter()
        .map(|(key, entry)| {
            let idxs = entry
                .changes()
                .iter()
                .map(|c| changes.intern(c, &mut nodes))
                .collect();
            (key, idxs, entry.leaf_count())
        })
        .collect();
    // Value-keyed memo lookup for run encoding: a run whose change-index sequence equals
    // its class pair's memoized entry encodes as a one-byte replay marker.  Matching by
    // interned *indices* (not `Arc` pointers) keeps the encoding stable across restores —
    // a seen-once run rebuilt from the shared table compares equal to the memo entry it
    // value-matches, exactly as the original did.
    let memo_by_key: HashMap<u64, (&[u32], usize)> = memo_entries
        .iter()
        .map(|(key, idxs, leaf)| (*key, (idxs.as_slice(), *leaf)))
        .collect();
    let pair_blob = encode_pair_table(acc, &mut changes, &mut nodes, &memo_by_key)?;

    // Shared tables.
    nodes.write_to(w)?;
    changes.write_to(w)?;

    // Dedup: class representatives in id order, then per-row class ids.
    put_varint(w, dedup.distinct() as u64)?;
    for idx in &class_nodes {
        put_varint(w, u64::from(*idx))?;
    }
    put_varint(w, dedup.len() as u64)?;
    for row in 0..dedup.len() {
        put_varint(w, u64::from(dedup.class_of(row)))?;
    }

    // Memo (before the pair table: replay markers resolve against it on read).
    match acc.memo.pinned_policy() {
        None => put_u8(w, 0)?,
        Some(AncestorPolicy::Full) => put_u8(w, 1)?,
        Some(AncestorPolicy::LcaPruned) => put_u8(w, 2)?,
    }
    put_varint(w, acc.memo.alignments() as u64)?;
    put_varint(w, memo_entries.len() as u64)?;
    for (key, idxs, leaf_count) in &memo_entries {
        put_u64(w, *key)?;
        put_varint(w, *leaf_count as u64)?;
        put_varint(w, idxs.len() as u64)?;
        for idx in idxs {
            put_varint(w, u64::from(*idx))?;
        }
    }
    let mut seen_once: Vec<u64> = acc.memo.seen_once_iter().collect();
    seen_once.sort_unstable();
    put_varint(w, seen_once.len() as u64)?;
    for key in seen_once {
        put_u64(w, key)?;
    }

    // Pair table blob, length-prefixed.
    put_varint(w, pair_blob.len() as u64)?;
    w.write_all(&pair_blob).map_err(CodecError::Io)?;
    Ok(())
}

/// Encodes the store + edge list as the run-per-pair table described in the module docs.
fn encode_pair_table(
    acc: &GraphAccumulator,
    changes: &mut ChangeTableBuilder,
    nodes: &mut NodeTableBuilder,
    memo_by_key: &HashMap<u64, (&[u32], usize)>,
) -> Result<Vec<u8>, CodecError> {
    let store = &acc.store;
    let mut blob = Vec::new();
    put_varint(&mut blob, acc.edges.len() as u64)?;
    put_varint(&mut blob, store.len() as u64)?;

    let mut base = 0usize; // next unclaimed record id — runs must tile the store
    let mut prev_to = 0i64;
    let mut run_idxs: Vec<u32> = Vec::new();
    for (k, edge) in acc.edges.iter().enumerate() {
        let leaf_count = edge.diffs.len();
        let contiguous = !edge.diffs.is_empty()
            && edge.diffs[0].0 == base
            && edge.diffs.windows(2).all(|p| p[1].0 == p[0].0 + 1);
        if !contiguous {
            return Err(corrupt(format!(
                "edge {k} labels are not the next contiguous leaf run (snapshot encoding \
                 relies on the builder's append order)"
            )));
        }
        // The run extends past the leaves to the next edge's first leaf (or store end).
        let next_base = acc.edges.get(k + 1).map_or(store.len(), |next| {
            next.diffs.first().map_or(store.len(), |d| d.0)
        });
        if next_base < base + leaf_count || next_base > store.len() {
            return Err(corrupt(format!("edge {k} run overlaps its neighbour")));
        }
        run_idxs.clear();
        for id in base..next_base {
            let record = store.get(DiffId(id));
            if record.q1 != edge.from || record.q2 != edge.to {
                return Err(corrupt(format!(
                    "record {id} endpoints disagree with its edge (snapshot encoding \
                     relies on per-pair record runs)"
                )));
            }
            run_idxs.push(changes.intern(record.change(), nodes));
        }

        put_zigzag(&mut blob, edge.to as i64 - prev_to)?;
        prev_to = edge.to as i64;
        put_varint(&mut blob, (edge.to - edge.from) as u64)?;
        let key = pair_key(acc.dedup.class_of(edge.from), acc.dedup.class_of(edge.to));
        match memo_by_key.get(&key) {
            Some((idxs, leaf)) if *idxs == run_idxs.as_slice() && *leaf == leaf_count => {
                put_u8(&mut blob, RUN_MEMOIZED)?;
            }
            _ => {
                put_u8(&mut blob, RUN_EXPLICIT)?;
                put_varint(&mut blob, leaf_count as u64)?;
                put_varint(&mut blob, run_idxs.len() as u64)?;
                for idx in &run_idxs {
                    put_varint(&mut blob, u64::from(*idx))?;
                }
            }
        }
        base = next_base;
    }
    if base != store.len() {
        return Err(corrupt(format!(
            "{} records beyond the last edge's run",
            store.len() - base
        )));
    }
    Ok(blob)
}

/// The still-unmaterialized pair table of a snapshot: compact run bytes plus the shared
/// change payloads they reference.  Produced by [`read_accumulator_deferred`] (which
/// checks only the leading counts), consumed — and fully validated — by
/// [`hydrate_pairs`]; [`LatentPairs::byte_len`] stands in for the store's memory
/// footprint while the session stays latent.
#[derive(Debug, Clone)]
pub struct LatentPairs {
    bytes: Vec<u8>,
    payloads: Vec<Arc<TreeChange>>,
    edges: usize,
    records: usize,
}

impl LatentPairs {
    /// Number of mined pairs (edges) the table will expand to.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of diff records the table will expand to.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Bytes held latent (run bytes plus shared-payload pointers).
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + self.payloads.len() * std::mem::size_of::<Arc<TreeChange>>()
    }
}

/// A minimal cursor over the in-memory pair blob: the per-byte `io::Read` plumbing is too
/// slow for millions of tiny varints, and the blob is already length-framed.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    #[inline]
    fn u8(&mut self) -> Result<u8, CodecError> {
        let v = *self
            .b
            .get(self.pos)
            .ok_or_else(|| corrupt("mining state truncated"))?;
        self.pos += 1;
        Ok(v)
    }

    /// A fixed-width little-endian `u64` (matches `put_u64`).
    #[inline]
    fn u64_le(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// A varint bounded by the same sanity limit as `take_count`.
    #[inline]
    fn count(&mut self) -> Result<usize, CodecError> {
        const MAX_COUNT: u64 = 1 << 28;
        let v = self.varint()?;
        if v > MAX_COUNT {
            return Err(corrupt(format!("count {v} exceeds sanity bound")));
        }
        Ok(v as usize)
    }

    /// The next `n` raw bytes.
    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.b.len())
            .ok_or_else(|| corrupt("mining state truncated"))?;
        let slice = &self.b[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    #[inline]
    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(corrupt("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    #[inline]
    fn zigzag(&mut self) -> Result<i64, CodecError> {
        let v = self.varint()?;
        Ok((v >> 1) as i64 ^ -((v & 1) as i64))
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

/// One decoded run header; `Explicit` carries `(leaf_count, change indices)`.
enum RunPayload {
    Memoized,
    Explicit(usize, std::ops::Range<usize>),
}

/// Per-class-pair record counts for the scan's memoized-run resolution.
///
/// The scan resolves one memo entry per run, and runs outnumber distinct class pairs by
/// orders of magnitude on repetitive logs — a 100k-line Zipf trace replays ~1.4M runs over
/// a few thousand distinct pairs.  A `DiffMemo::get` hash probe per run is the single
/// largest cost of a deferred restore, so for small class counts the totals are spread
/// into a dense `classes × classes` matrix (a multiply and an array index per run); larger
/// class counts fall back to one prebuilt key → total map.
enum MemoTotals {
    /// `totals[ca * distinct + cb]` = the entry's change count (0 = absent or empty).
    Dense(Vec<u32>, usize),
    Sparse(HashMap<u64, u32>),
}

/// Class counts up to this bound get the dense matrix (≤ 4 MiB of `u32` totals).
const DENSE_CLASS_LIMIT: usize = 1024;

impl MemoTotals {
    fn build(memo: &DiffMemo, distinct: usize) -> Self {
        if distinct <= DENSE_CLASS_LIMIT {
            let mut totals = vec![0u32; distinct * distinct];
            for (key, entry) in memo.pairs_iter() {
                let (ca, cb) = ((key >> 32) as usize, key as u32 as usize);
                if ca < distinct && cb < distinct && !entry.is_empty() {
                    totals[ca * distinct + cb] = entry.changes().len() as u32;
                }
            }
            MemoTotals::Dense(totals, distinct)
        } else {
            MemoTotals::Sparse(
                memo.pairs_iter()
                    .filter(|(_, entry)| !entry.is_empty())
                    .map(|(key, entry)| (key, entry.changes().len() as u32))
                    .collect(),
            )
        }
    }

    /// The non-empty entry's change count for `(ca, cb)`, or `None` if absent/empty.
    #[inline]
    fn get(&self, ca: u32, cb: u32) -> Option<usize> {
        let total = match self {
            MemoTotals::Dense(totals, distinct) => totals[ca as usize * distinct + cb as usize],
            MemoTotals::Sparse(map) => map.get(&pair_key(ca, cb)).copied().unwrap_or(0),
        };
        (total > 0).then_some(total as usize)
    }
}

/// Walks every run in the blob, invoking `sink` with `(from, to, payload)`; shared
/// validation for the scan and hydration passes.  `explicit_idx` collects explicit runs'
/// change indices (flat, range-addressed) so hydration avoids per-run allocation.
fn walk_pair_table(
    blob: &[u8],
    rows: usize,
    classes: &[u32],
    memo: &DiffMemo,
    payload_count: usize,
    explicit_idx: &mut Vec<u32>,
    mut sink: impl FnMut(usize, usize, RunPayload),
) -> Result<(usize, usize), CodecError> {
    let distinct = classes.iter().copied().max().map_or(0, |c| c as usize + 1);
    let memo_totals = MemoTotals::build(memo, distinct);
    let mut cur = Cur { b: blob, pos: 0 };
    let edges = cur.varint()? as usize;
    let declared_records = cur.varint()? as usize;
    let mut records = 0usize;
    let mut prev_to = 0i64;
    for k in 0..edges {
        let to = prev_to + cur.zigzag()?;
        prev_to = to;
        let offset = cur.varint()? as i64;
        let from = to - offset;
        if to < 0 || to as usize >= rows || offset < 1 || from < 0 {
            return Err(corrupt(format!("run {k} endpoints out of range")));
        }
        let (from, to) = (from as usize, to as usize);
        match cur.u8()? {
            RUN_MEMOIZED => {
                let total = memo_totals.get(classes[from], classes[to]).ok_or_else(|| {
                    corrupt(format!("run {k} replays an absent or empty memo entry"))
                })?;
                records += total;
                sink(from, to, RunPayload::Memoized);
            }
            RUN_EXPLICIT => {
                let leaf_count = cur.varint()? as usize;
                let total = cur.varint()? as usize;
                if total == 0 || leaf_count > total || total > declared_records {
                    return Err(corrupt(format!("run {k} has an impossible record count")));
                }
                let start = explicit_idx.len();
                for _ in 0..total {
                    let idx = cur.varint()? as usize;
                    if idx >= payload_count {
                        return Err(corrupt(format!("run {k} references missing change {idx}")));
                    }
                    explicit_idx.push(idx as u32);
                }
                records += total;
                sink(
                    from,
                    to,
                    RunPayload::Explicit(leaf_count, start..explicit_idx.len()),
                );
            }
            other => return Err(corrupt(format!("invalid run tag {other}"))),
        }
        if records > declared_records {
            return Err(corrupt("pair table exceeds its declared record count"));
        }
    }
    if records != declared_records {
        return Err(corrupt(format!(
            "pair table declares {declared_records} records, runs produce {records}"
        )));
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes after the pair table"));
    }
    Ok((edges, records))
}

/// Reads mining state written by [`write_accumulator`], deferring pair-table expansion:
/// the returned accumulator carries the rebuilt dedup arena and warm memo but an *empty*
/// store and edge list, and the pair table rides alongside as [`LatentPairs`].  Callers
/// must [`hydrate_pairs`] before touching the graph; until then the accumulator is only
/// good for dedup/memo queries, and semantic errors inside the run blob surface from
/// hydration rather than here (the session layer's checksum already guarantees the bytes
/// are the ones that were written).
pub fn read_accumulator_deferred(
    r: &mut &[u8],
) -> Result<(GraphAccumulator, LatentPairs), CodecError> {
    let nodes = read_node_table(r)?;
    let change_payloads = read_change_table(r, &nodes)?;

    // Everything below the tables is fixed-stride scalars at row/pair volume — hundreds
    // of thousands of tiny varints — so decode through the slice cursor rather than
    // per-item `io::Read` calls (restore always hands us an in-memory frame).
    let mut cur = Cur { b: r, pos: 0 };

    // Dedup: re-ingest each row's representative; first-come ids must match the stored
    // sequence exactly.
    let distinct = cur.count()?;
    let mut class_nodes = Vec::with_capacity(distinct.min(1 << 16));
    for _ in 0..distinct {
        let idx = cur.varint()? as usize;
        class_nodes.push(
            nodes
                .get(idx)
                .ok_or_else(|| corrupt(format!("class references missing node {idx}")))?,
        );
    }
    let rows = cur.count()?;
    let mut dedup = DedupTable::new();
    for row in 0..rows {
        let class = cur.varint()? as usize;
        let node = *class_nodes
            .get(class)
            .ok_or_else(|| corrupt(format!("row {row} references missing class {class}")))?;
        let assigned = dedup.ingest(node);
        if assigned as usize != class {
            return Err(corrupt(format!(
                "row {row} restored into class {assigned}, snapshot says {class}"
            )));
        }
    }
    if dedup.distinct() != distinct {
        return Err(corrupt(format!(
            "restored {} distinct classes, snapshot says {distinct}",
            dedup.distinct()
        )));
    }

    // Memo.
    let policy = match cur.u8()? {
        0 => None,
        1 => Some(AncestorPolicy::Full),
        2 => Some(AncestorPolicy::LcaPruned),
        other => return Err(corrupt(format!("invalid memo policy tag {other}"))),
    };
    let alignments = cur.count()?;
    let pair_count = cur.count()?;
    let mut pairs = Vec::with_capacity(pair_count.min(1 << 16));
    for _ in 0..pair_count {
        let key = cur.u64_le()?;
        let leaf_count = cur.count()?;
        let change_count = cur.count()?;
        if leaf_count > change_count {
            return Err(corrupt(format!(
                "memo pair {key:#x} claims {leaf_count} leaves of {change_count} changes"
            )));
        }
        let mut shared = Vec::with_capacity(change_count.min(1 << 12));
        for _ in 0..change_count {
            let idx = cur.varint()? as usize;
            shared.push(
                change_payloads
                    .get(idx)
                    .ok_or_else(|| corrupt(format!("memo references missing change {idx}")))?
                    .clone(),
            );
        }
        pairs.push((key, PairChanges::from_shared_parts(shared, leaf_count)));
    }
    let seen_once_count = cur.count()?;
    let mut seen_once = Vec::with_capacity(seen_once_count.min(1 << 16));
    for _ in 0..seen_once_count {
        seen_once.push(cur.u64_le()?);
    }
    let memo = DiffMemo::from_parts(policy, alignments, pairs, seen_once);

    // Pair table: keep the blob compact and read only its leading counts here.  The full
    // per-run scan is deferred to [`hydrate_pairs`] — at the session layer the blob
    // arrives inside a checksummed frame, so storage corruption is already rejected
    // before this point and the scan would only re-pay the table's dominant decode cost
    // on the restore path.  The counts are bounded like every other section count so a
    // hand-crafted header can't provoke an oversized allocation.
    let blob_len = cur.count()?;
    let blob = cur.take(blob_len)?.to_vec();
    *r = &cur.b[cur.pos..];
    let mut head = Cur { b: &blob, pos: 0 };
    let edges = head.varint()?;
    let records = head.varint()?;
    const MAX_PAIR_COUNT: u64 = 1 << 28;
    if edges > MAX_PAIR_COUNT || records > MAX_PAIR_COUNT {
        return Err(corrupt(format!(
            "pair table declares an implausible size ({edges} edges, {records} records)"
        )));
    }
    let (edges, records) = (edges as usize, records as usize);

    let acc = GraphAccumulator {
        dedup,
        store: pi_diff::DiffStore::new(),
        edges: Vec::new(),
        memo,
    };
    Ok((
        acc,
        LatentPairs {
            bytes: blob,
            payloads: change_payloads,
            edges,
            records,
        },
    ))
}

/// Validates and expands a latent pair table into the accumulator's store and edge list,
/// restoring every `DiffId` at its original offset.  This is where the full
/// bounds-and-membership scan of the run blob happens.  The accumulator must be the one
/// returned by the same [`read_accumulator_deferred`] call (its memo and class ids
/// resolve the replay markers); pairing it with anything else is reported as corruption.
pub fn hydrate_pairs(acc: &mut GraphAccumulator, pairs: LatentPairs) -> Result<(), CodecError> {
    let classes: Vec<u32> = (0..acc.dedup.len())
        .map(|row| acc.dedup.class_of(row))
        .collect();
    let mut store = pi_diff::DiffStore::with_capacity(pairs.records);
    let mut edges = Vec::with_capacity(pairs.edges);
    let mut explicit_idx = Vec::new();
    // Two-pass over explicit runs is avoided by collecting sink closures' work directly;
    // the closure cannot borrow `store` and the index scratch at once, so runs land in a
    // staging list first.
    let mut staged: Vec<(usize, usize, RunPayload)> = Vec::with_capacity(pairs.edges);
    walk_pair_table(
        &pairs.bytes,
        acc.dedup.len(),
        &classes,
        &acc.memo,
        pairs.payloads.len(),
        &mut explicit_idx,
        |from, to, payload| staged.push((from, to, payload)),
    )?;
    for (from, to, payload) in staged {
        let first = store.len();
        let leaf_count = match payload {
            RunPayload::Memoized => {
                let entry = acc
                    .memo
                    .get(classes[from], classes[to])
                    .expect("validated by walk_pair_table");
                for change in entry.changes() {
                    store.push(DiffRecord::from_shared(from, to, Arc::clone(change)));
                }
                entry.leaf_count()
            }
            RunPayload::Explicit(leaf_count, range) => {
                for idx in &explicit_idx[range] {
                    store.push(DiffRecord::from_shared(
                        from,
                        to,
                        Arc::clone(&pairs.payloads[*idx as usize]),
                    ));
                }
                leaf_count
            }
        };
        edges.push(Edge {
            from,
            to,
            diffs: (first..first + leaf_count).map(DiffId).collect(),
        });
    }
    acc.store = store;
    acc.edges = edges;
    Ok(())
}

/// Reads mining state written by [`write_accumulator`] and materializes it fully — the
/// deferred read followed by immediate hydration.
pub fn read_accumulator(r: &mut &[u8]) -> Result<GraphAccumulator, CodecError> {
    let (mut acc, pairs) = read_accumulator_deferred(r)?;
    hydrate_pairs(&mut acc, pairs)?;
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use pi_ast::Frontend as _;
    use pi_ast::Node;

    fn parse(sql: &str) -> Node {
        pi_sql::SqlFrontend.parse_one(sql).unwrap()
    }

    fn mined_accumulator(memoize: bool) -> GraphAccumulator {
        let log: Vec<Node> = [
            "SELECT sales FROM t WHERE cty = 'USA'",
            "SELECT sales FROM t WHERE cty = 'EUR'",
            "SELECT sales FROM t WHERE cty = 'USA'",
            "SELECT costs FROM t WHERE cty = 'EUR'",
            "SELECT sales FROM t WHERE cty = 'EUR'",
            "SELECT sales, costs FROM t WHERE cty = 'USA' ORDER BY sales",
        ]
        .iter()
        .map(|sql| parse(sql))
        .collect();
        let mut acc = GraphAccumulator::new();
        GraphBuilder::new()
            .window(crate::WindowStrategy::AllPairs)
            .memoize(memoize)
            .extend_batch(&mut acc, log);
        acc
    }

    #[test]
    fn accumulator_round_trips_byte_identically() {
        for memoize in [true, false] {
            let acc = mined_accumulator(memoize);
            let mut buf = Vec::new();
            write_accumulator(&mut buf, &acc).unwrap();
            let restored = read_accumulator(&mut buf.as_slice()).unwrap();
            assert_eq!(restored.stats(), acc.stats());
            assert_eq!(restored.to_graph(), acc.to_graph());
            assert_eq!(
                restored.memo().memoized_pairs(),
                acc.memo().memoized_pairs()
            );
            assert_eq!(restored.memo().alignments(), acc.memo().alignments());
            assert_eq!(restored.dedup().distinct(), acc.dedup().distinct());
            for class in 0..acc.dedup().distinct() as u32 {
                assert_eq!(restored.dedup().count(class), acc.dedup().count(class));
                assert_eq!(
                    restored.dedup().tree_size(class),
                    acc.dedup().tree_size(class)
                );
            }
            // Persisting the restored state reproduces the exact same bytes.
            let mut again = Vec::new();
            write_accumulator(&mut again, &restored).unwrap();
            assert_eq!(again, buf, "snapshot bytes must be deterministic");
        }
    }

    #[test]
    fn deferred_read_hydrates_to_the_eager_result() {
        let acc = mined_accumulator(true);
        let mut buf = Vec::new();
        write_accumulator(&mut buf, &acc).unwrap();
        let (mut deferred, pairs) = read_accumulator_deferred(&mut buf.as_slice()).unwrap();
        // Latent: dedup and memo are live, the graph is not materialized yet.
        assert_eq!(deferred.dedup().distinct(), acc.dedup().distinct());
        assert_eq!(deferred.store().len(), 0);
        assert_eq!(pairs.edge_count(), acc.edges.len());
        assert_eq!(pairs.record_count(), acc.store.len());
        assert!(pairs.byte_len() > 0);
        hydrate_pairs(&mut deferred, pairs).unwrap();
        assert_eq!(deferred.to_graph(), acc.to_graph());
        assert_eq!(deferred.stats(), acc.stats());
    }

    #[test]
    fn restored_state_continues_mining_identically() {
        // Mine a prefix, snapshot, restore, then extend both the original and the restored
        // accumulator with the same suffix: stores, edges and ids must stay identical —
        // and the restored memo must be warm (no new alignments for already-seen pairs).
        let log: Vec<Node> = (0..8)
            .map(|i| parse(&format!("SELECT sales FROM t WHERE x = {}", i % 2)))
            .collect();
        let (prefix, suffix) = log.split_at(5);
        let builder = GraphBuilder::new().window(crate::WindowStrategy::Sliding(3));
        let mut live = GraphAccumulator::new();
        builder.extend_batch(&mut live, prefix.to_vec());

        let mut buf = Vec::new();
        write_accumulator(&mut buf, &live).unwrap();
        let mut restored = read_accumulator(&mut buf.as_slice()).unwrap();
        let alignments_before = restored.memo().alignments();

        builder.extend_batch(&mut live, suffix.to_vec());
        builder.extend_batch(&mut restored, suffix.to_vec());
        assert_eq!(restored.to_graph(), live.to_graph());
        // The suffix repeats shapes already aligned in the prefix: a warm memo re-stamps
        // them without any new alignment work.
        assert_eq!(restored.memo().alignments(), alignments_before);
    }

    #[test]
    fn corrupted_accumulator_snapshots_err_cleanly() {
        let acc = mined_accumulator(true);
        let mut buf = Vec::new();
        write_accumulator(&mut buf, &acc).unwrap();
        // Truncation at every length must fail cleanly, never panic.
        for len in 0..buf.len() {
            assert!(read_accumulator(&mut buf[..len].as_ref()).is_err());
        }
        // Bit flips must never panic: either a clean Err, or a structurally valid
        // accumulator (an in-range endpoint or memo-key flip is indistinguishable at this
        // layer).  Detecting *any* flipped byte is the session envelope's job — the whole
        // payload rides inside a checksummed frame, so pi-core's restore rejects these
        // streams before this reader ever runs.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x2a;
            if let Ok(restored) = read_accumulator(&mut bad.as_slice()) {
                let _ = restored.to_graph();
            }
        }
    }
}
