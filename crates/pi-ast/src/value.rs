//! Attribute values attached to AST nodes.
//!
//! Each AST node carries a (possibly empty) set of attribute/value pairs, e.g. a binary
//! expression node carries `op: "="` and a numeric literal node carries `value: 9` (paper
//! Figure 3).  Values are restricted to the primitive shapes the rest of the pipeline
//! understands; widget rules only ever distinguish strings from numbers from "anything else".

use crate::istr::IStr;
use std::fmt;

/// A primitive value stored in a node attribute.
///
/// The ordering/equality semantics are *syntactic*: `Int(1)` and `Float(1.0)` are different
/// values because the query text differs, which matters for a purely syntactic system.
///
/// String payloads are interned ([`IStr`]): a trace that repeats the same literal in a
/// million queries stores its bytes once, `clone()` is a 16-byte copy, and equality is a
/// pointer compare — while hashing still reads the string *content*, so structural hashes
/// are identical to the owned-`String` representation this replaced.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string value (identifiers, string literals, operators…), interned process-wide.
    Str(IStr),
    /// An integer value.
    Int(i64),
    /// A floating point value.
    Float(f64),
    /// A boolean flag (e.g. `distinct: true`).
    Bool(bool),
}

impl AttrValue {
    /// Returns the value as a string slice if it is a [`AttrValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an [`AttrValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is numeric (int or float).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as a bool if it is a [`AttrValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when the value is numeric (integer or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttrValue::Int(_) | AttrValue::Float(_))
    }

    /// A stable textual rendering used for hashing and display.
    pub fn render(&self) -> String {
        match self {
            AttrValue::Str(s) => s.as_str().to_string(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(f) => {
                // Keep a trailing `.0` so the rendering round-trips as a float literal.
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(IStr::intern(s))
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(IStr::intern_owned(s))
    }
}

impl From<IStr> for AttrValue {
    fn from(s: IStr) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

impl std::hash::Hash for AttrValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            AttrValue::Str(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            AttrValue::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            AttrValue::Float(f) => {
                state.write_u8(2);
                f.to_bits().hash(state);
            }
            AttrValue::Bool(b) => {
                state.write_u8(3);
                b.hash(state);
            }
        }
    }
}

impl Eq for AttrValue {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_variants() {
        assert_eq!(AttrValue::from("abc").as_str(), Some("abc"));
        assert_eq!(AttrValue::from(7i64).as_int(), Some(7));
        assert_eq!(AttrValue::from(7i64).as_num(), Some(7.0));
        assert_eq!(AttrValue::from(2.5).as_num(), Some(2.5));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(AttrValue::from("abc").as_int(), None);
        assert_eq!(AttrValue::from(1i64).as_str(), None);
    }

    #[test]
    fn numeric_detection() {
        assert!(AttrValue::Int(3).is_numeric());
        assert!(AttrValue::Float(3.5).is_numeric());
        assert!(!AttrValue::Str("3".into()).is_numeric());
        assert!(!AttrValue::Bool(false).is_numeric());
    }

    #[test]
    fn render_round_trips_floats_distinctly_from_ints() {
        assert_eq!(AttrValue::Int(3).render(), "3");
        assert_eq!(AttrValue::Float(3.0).render(), "3.0");
        assert_eq!(AttrValue::Float(3.25).render(), "3.25");
    }

    #[test]
    fn int_and_float_with_same_value_are_not_equal() {
        assert_ne!(AttrValue::Int(1), AttrValue::Float(1.0));
    }

    #[test]
    fn hash_is_consistent_with_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &AttrValue| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&AttrValue::from("x")), h(&AttrValue::from("x")));
        assert_ne!(h(&AttrValue::Int(1)), h(&AttrValue::Float(1.0)));
    }
}
