//! High-level builders for common SQL AST shapes.
//!
//! The experiments and workload generators frequently need to construct queries
//! programmatically (e.g. the OLAP random walk of §7 adds/removes aggregations and predicates).
//! These helpers build well-formed trees without going through SQL text and the parser, which
//! keeps generators fast and makes the intent explicit.

use crate::kind::NodeKind;
use crate::node::Node;

/// Builder for SELECT statements.
///
/// ```
/// use pi_ast::builder::SelectBuilder;
/// use pi_ast::{Node, NodeKind};
///
/// let q = SelectBuilder::new()
///     .project(Node::column("DestState"))
///     .project_agg("COUNT", Node::column("Delay"))
///     .from_table("ontime")
///     .where_pred(SelectBuilder::eq(Node::column("Month"), Node::int(9)))
///     .group_by(Node::column("DestState"))
///     .build();
/// assert_eq!(q.kind(), NodeKind::Select);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SelectBuilder {
    distinct: bool,
    projections: Vec<Node>,
    relations: Vec<Node>,
    predicates: Vec<Node>,
    groupings: Vec<Node>,
    having: Vec<Node>,
    orderings: Vec<(Node, bool)>,
    limit: Option<Node>,
}

impl SelectBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the query DISTINCT.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Adds a plain projection expression.
    pub fn project(mut self, expr: Node) -> Self {
        self.projections
            .push(Node::new(NodeKind::ProjClause).with_child(expr));
        self
    }

    /// Adds an aliased projection expression.
    pub fn project_as(mut self, expr: Node, alias: &str) -> Self {
        self.projections.push(
            Node::new(NodeKind::ProjClause)
                .with_attr("alias", alias)
                .with_child(expr),
        );
        self
    }

    /// Adds an aggregate projection, e.g. `COUNT(Delay)`.
    pub fn project_agg(self, func: &str, arg: Node) -> Self {
        self.project(Self::agg(func, arg))
    }

    /// Projects `*`.
    pub fn project_star(self) -> Self {
        self.project(Node::star())
    }

    /// Adds a base table to the FROM clause.
    pub fn from_table(mut self, name: &str) -> Self {
        self.relations.push(Node::table(name));
        self
    }

    /// Adds an aliased base table to the FROM clause.
    pub fn from_table_as(mut self, name: &str, alias: &str) -> Self {
        self.relations
            .push(Node::table(name).with_attr("alias", alias));
        self
    }

    /// Adds a derived table (subquery) to the FROM clause.
    pub fn from_subquery(mut self, subquery: Node) -> Self {
        self.relations
            .push(Node::new(NodeKind::SubqueryRef).with_child(subquery));
        self
    }

    /// Adds an aliased table-valued function call to the FROM clause.
    pub fn from_table_func(mut self, name: &str, args: Vec<Node>, alias: &str) -> Self {
        self.relations.push(
            Node::new(NodeKind::TableFunc)
                .with_attr("name", name)
                .with_attr("alias", alias)
                .with_children(args),
        );
        self
    }

    /// Adds a conjunct to the WHERE clause.
    pub fn where_pred(mut self, pred: Node) -> Self {
        self.predicates.push(pred);
        self
    }

    /// Adds a grouping expression.
    pub fn group_by(mut self, expr: Node) -> Self {
        self.groupings
            .push(Node::new(NodeKind::GroupClause).with_child(expr));
        self
    }

    /// Adds a conjunct to the HAVING clause.
    pub fn having(mut self, pred: Node) -> Self {
        self.having.push(pred);
        self
    }

    /// Adds an ordering expression; `asc` selects the direction.
    pub fn order_by(mut self, expr: Node, asc: bool) -> Self {
        self.orderings.push((expr, asc));
        self
    }

    /// Sets a LIMIT / TOP count.
    pub fn limit(mut self, n: i64) -> Self {
        self.limit = Some(Node::int(n));
        self
    }

    /// Builds the SELECT node.  Children are emitted in a fixed clause order so that two
    /// queries built with the same clauses always produce identical trees (important for the
    /// purely syntactic diffing downstream).
    pub fn build(self) -> Node {
        let mut root = Node::new(NodeKind::Select);
        if self.distinct {
            root.set_attr("distinct", true);
        }
        let mut project = Node::new(NodeKind::Project);
        if self.projections.is_empty() {
            project.push_child(Node::new(NodeKind::ProjClause).with_child(Node::star()));
        } else {
            for p in self.projections {
                project.push_child(p);
            }
        }
        root.push_child(project);

        let mut from = Node::new(NodeKind::From);
        for r in self.relations {
            from.push_child(r);
        }
        root.push_child(from);

        if !self.predicates.is_empty() {
            root.push_child(
                Node::new(NodeKind::Where).with_child(Self::conjunction(self.predicates)),
            );
        }
        if !self.groupings.is_empty() {
            let mut gb = Node::new(NodeKind::GroupBy);
            for g in self.groupings {
                gb.push_child(g);
            }
            root.push_child(gb);
        }
        if !self.having.is_empty() {
            root.push_child(Node::new(NodeKind::Having).with_child(Self::conjunction(self.having)));
        }
        if !self.orderings.is_empty() {
            let mut ob = Node::new(NodeKind::OrderBy);
            for (expr, asc) in self.orderings {
                ob.push_child(
                    Node::new(NodeKind::OrderClause)
                        .with_attr("dir", if asc { "asc" } else { "desc" })
                        .with_child(expr),
                );
            }
            root.push_child(ob);
        }
        if let Some(limit) = self.limit {
            root.push_child(Node::new(NodeKind::Limit).with_child(limit));
        }
        root
    }

    // ------------------------------------------------------------------ expression helpers

    /// `left = right`.
    pub fn eq(left: Node, right: Node) -> Node {
        Self::binop("=", left, right)
    }

    /// `left <op> right`.
    pub fn binop(op: &str, left: Node, right: Node) -> Node {
        Node::new(NodeKind::BiExpr)
            .with_attr("op", op)
            .with_child(left)
            .with_child(right)
    }

    /// An aggregate call such as `SUM(price)`.  The function name becomes a [`NodeKind::FuncName`]
    /// child so that name-only changes diff as small string leaves.
    pub fn agg(func: &str, arg: Node) -> Node {
        Node::new(NodeKind::AggCall)
            .with_child(Node::new(NodeKind::FuncName).with_attr("name", func.to_uppercase()))
            .with_child(arg)
    }

    /// A scalar function call.
    pub fn func(name: &str, args: Vec<Node>) -> Node {
        Node::new(NodeKind::FuncCall)
            .with_child(Node::new(NodeKind::FuncName).with_attr("name", name))
            .with_children(args)
    }

    /// Folds a list of predicates into a left-deep AND tree.
    pub fn conjunction(mut preds: Vec<Node>) -> Node {
        assert!(!preds.is_empty(), "conjunction of zero predicates");
        let mut acc = preds.remove(0);
        for p in preds {
            acc = Self::binop("AND", acc, p);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    #[test]
    fn builds_the_paper_figure1_style_query() {
        let q = SelectBuilder::new()
            .project_agg("COUNT", Node::column("Delay"))
            .project(Node::column("DestState"))
            .from_table("ontime")
            .where_pred(SelectBuilder::eq(Node::column("Month"), Node::int(9)))
            .where_pred(SelectBuilder::eq(Node::column("Day"), Node::int(3)))
            .group_by(Node::column("DestState"))
            .build();
        assert_eq!(q.kind(), NodeKind::Select);
        // project, from, where, group by
        assert_eq!(q.arity(), 4);
        let gb: Path = "3".parse().unwrap();
        assert_eq!(q.get(&gb).unwrap().kind(), NodeKind::GroupBy);
        // the WHERE is an AND of the two conjuncts
        let w = q.get(&"2/0".parse().unwrap()).unwrap();
        assert_eq!(w.kind(), NodeKind::BiExpr);
        assert_eq!(w.attr_str("op"), Some("AND"));
    }

    #[test]
    fn empty_projection_defaults_to_star() {
        let q = SelectBuilder::new().from_table("t").build();
        let proj = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(proj.kind(), NodeKind::Star);
    }

    #[test]
    fn clause_order_is_deterministic() {
        let build = || {
            SelectBuilder::new()
                .project(Node::column("a"))
                .from_table("t")
                .where_pred(SelectBuilder::eq(Node::column("b"), Node::int(1)))
                .group_by(Node::column("a"))
                .having(SelectBuilder::binop(
                    ">",
                    SelectBuilder::agg("SUM", Node::column("c")),
                    Node::int(10),
                ))
                .order_by(Node::column("a"), true)
                .limit(5)
                .build()
        };
        assert_eq!(build(), build());
        let q = build();
        let kinds: Vec<_> = q.children().iter().map(|c| c.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                NodeKind::Project,
                NodeKind::From,
                NodeKind::Where,
                NodeKind::GroupBy,
                NodeKind::Having,
                NodeKind::OrderBy,
                NodeKind::Limit
            ]
        );
    }

    #[test]
    fn conjunction_is_left_deep() {
        let c = SelectBuilder::conjunction(vec![
            Node::column("a"),
            Node::column("b"),
            Node::column("c"),
        ]);
        assert_eq!(c.attr_str("op"), Some("AND"));
        assert_eq!(c.children()[0].attr_str("op"), Some("AND"));
        assert_eq!(c.children()[1].attr_str("name"), Some("c"));
    }

    #[test]
    #[should_panic(expected = "conjunction of zero predicates")]
    fn conjunction_of_nothing_panics() {
        let _ = SelectBuilder::conjunction(vec![]);
    }

    #[test]
    fn table_func_and_subquery_relations() {
        let inner = SelectBuilder::new()
            .project(Node::column("a"))
            .from_table("T")
            .build();
        let q = SelectBuilder::new()
            .project_star()
            .from_subquery(inner)
            .from_table_func(
                "dbo.fGetNearbyObjEq",
                vec![Node::float(5.848), Node::float(0.352), Node::float(2.0616)],
                "d",
            )
            .build();
        let from = q.get(&"1".parse::<Path>().unwrap()).unwrap();
        assert_eq!(from.arity(), 2);
        assert_eq!(from.children()[0].kind(), NodeKind::SubqueryRef);
        assert_eq!(from.children()[1].kind(), NodeKind::TableFunc);
        assert_eq!(from.children()[1].attr_str("alias"), Some("d"));
    }
}
