//! A process-wide, shard-locked intern arena for literal and identifier strings.
//!
//! [`Sym`](crate::Sym) interns the *bounded* vocabulary of attribute names; [`IStr`] extends
//! interning to the *unbounded-but-repetitive* population of attribute values — column
//! identifiers, string literals, operators — so a million-query trace that mentions `'CA'`
//! in half its filters stores those bytes once, and every `AttrValue::Str` is a copyable
//! 16-byte handle instead of an owned `String`.
//!
//! Design points:
//!
//! * The table is split into [`SHARD_COUNT`] independently `RwLock`ed shards keyed by the
//!   string's FNV-1a hash, so the `PI_THREADS` worker pool (and the server's session pool)
//!   can intern concurrently without funnelling through one lock.  Reads take a shard read
//!   lock; only first-sight insertion takes the write lock (double-checked).
//! * Interned strings are leaked (`Box::leak`), so [`IStr::as_str`] is a field read and the
//!   handle is `Copy`.  The arena therefore grows with the number of *distinct* strings ever
//!   interned and never shrinks — by construction the right trade for trace ingest, where
//!   the distinct population is bounded by the schema/literal vocabulary while the log is
//!   not.  [`IStr::arena_stats`] reports the live size for memory accounting.
//! * Equality is a pointer compare: the arena guarantees one leaked allocation per distinct
//!   string, so two handles are equal iff their `&'static str`s alias.  [`Hash`] and [`Ord`]
//!   go through the string *content*, which keeps structural hashes and orderings
//!   independent of interning order — exactly the property `Sym::hash64` pins for names.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::intern::str_hash64;

/// Number of independently locked arena shards (a power of two so shard selection is a mask).
const SHARD_COUNT: usize = 16;

/// Live size of the intern arena; see [`IStr::arena_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Distinct strings interned so far, process-wide.
    pub strings: usize,
    /// Total bytes of interned string payload (excluding table overhead).
    pub bytes: usize,
}

static STRINGS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

fn shards() -> &'static [RwLock<HashSet<&'static str>>; SHARD_COUNT] {
    static SHARDS: OnceLock<[RwLock<HashSet<&'static str>>; SHARD_COUNT]> = OnceLock::new();
    SHARDS.get_or_init(|| std::array::from_fn(|_| RwLock::new(HashSet::new())))
}

/// An interned string value: a `Copy` handle into the process-wide literal arena.
///
/// Obtain one with [`IStr::intern`] (or the `From` impls); read it back with
/// [`IStr::as_str`] — a field read, no lock.  `IStr` also derefs to `str`.
#[derive(Clone, Copy)]
pub struct IStr {
    text: &'static str,
}

impl IStr {
    /// Interns a string, returning its handle (inserting on first sight).
    pub fn intern(s: &str) -> IStr {
        let shard = &shards()[(str_hash64(s) as usize) & (SHARD_COUNT - 1)];
        if let Some(&text) = shard.read().expect("istr arena poisoned").get(s) {
            return IStr { text };
        }
        let mut table = shard.write().expect("istr arena poisoned");
        // Re-check under the write lock: another thread may have inserted meanwhile.
        if let Some(&text) = table.get(s) {
            return IStr { text };
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        table.insert(leaked);
        STRINGS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(leaked.len(), Ordering::Relaxed);
        IStr { text: leaked }
    }

    /// Interns an owned string, reusing its allocation when it is the first sighting.
    pub fn intern_owned(s: String) -> IStr {
        let shard = &shards()[(str_hash64(&s) as usize) & (SHARD_COUNT - 1)];
        if let Some(&text) = shard.read().expect("istr arena poisoned").get(s.as_str()) {
            return IStr { text };
        }
        let mut table = shard.write().expect("istr arena poisoned");
        if let Some(&text) = table.get(s.as_str()) {
            return IStr { text };
        }
        let leaked: &'static str = Box::leak(s.into_boxed_str());
        table.insert(leaked);
        STRINGS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(leaked.len(), Ordering::Relaxed);
        IStr { text: leaked }
    }

    /// The interned string (a field read, no lock).
    pub fn as_str(self) -> &'static str {
        self.text
    }

    /// Current size of the process-wide arena, for memory accounting.  Monotonic: the arena
    /// never shrinks.
    pub fn arena_stats() -> ArenaStats {
        ArenaStats {
            strings: STRINGS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &Self) -> bool {
        // The arena holds one allocation per distinct string, so aliasing ⇔ equal content.
        std::ptr::eq(self.text as *const str, other.text as *const str)
    }
}

impl Eq for IStr {}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text.cmp(other.text)
    }
}

impl Hash for IStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hashing, byte-compatible with `String`/`str`, so swapping `String` payloads
        // for `IStr` leaves every structural hash in the workspace unchanged.
        self.text.hash(state);
    }
}

impl std::ops::Deref for IStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.text
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.text, f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr::intern(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr::intern_owned(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_equal() {
        let a = IStr::intern("istr_idempotent");
        let b = IStr::intern("istr_idempotent");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a.as_str(), "istr_idempotent");
    }

    #[test]
    fn distinct_strings_are_unequal() {
        assert_ne!(IStr::intern("istr_alpha"), IStr::intern("istr_beta"));
    }

    #[test]
    fn hash_matches_str_content_hash() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &dyn Fn(&mut DefaultHasher)| {
            let mut s = DefaultHasher::new();
            v(&mut s);
            s.finish()
        };
        let interned = IStr::intern("istr_hash_probe");
        assert_eq!(
            h(&|s| interned.hash(s)),
            h(&|s| "istr_hash_probe".to_string().hash(s)),
        );
    }

    #[test]
    fn ordering_follows_content() {
        assert!(IStr::intern("istr_a") < IStr::intern("istr_b"));
    }

    #[test]
    fn arena_stats_grow_only_on_first_sight() {
        let before = IStr::arena_stats();
        let s = IStr::intern("istr_stats_probe_once");
        let after = IStr::arena_stats();
        assert!(after.strings > before.strings);
        assert!(after.bytes >= before.bytes + s.len());
        // Re-interning hands back the same allocation; the counters are monotonic and only
        // first sightings bump them (pointer equality proves no second allocation happened).
        let again = IStr::intern("istr_stats_probe_once");
        assert!(std::ptr::eq(s.as_str(), again.as_str()));
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| IStr::intern(&format!("istr_threaded_{}", (t + i) % 20)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<IStr>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all[1..] {
            for (a, b) in all[0].iter().zip(row) {
                if a.as_str() == b.as_str() {
                    assert_eq!(a, b);
                }
            }
        }
    }
}
