//! Debug pretty-printing of ASTs.
//!
//! The printer renders a tree in an indented outline similar to the figures in the paper, with
//! each node's kind, attributes and (optionally) path, e.g.
//!
//! ```text
//! Select
//! ├─ Project
//! │  └─ ProjClause
//! │     └─ ColExpr(name=sales)
//! └─ From
//!    └─ TableRef(name=t)
//! ```

use crate::node::Node;
use crate::path::Path;
use std::fmt::Write as _;

/// Configurable tree printer.
#[derive(Debug, Clone, Default)]
pub struct TreePrinter {
    show_paths: bool,
    max_depth: Option<usize>,
}

impl TreePrinter {
    /// A printer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Also print the `0/1/0`-style path of every node.
    pub fn with_paths(mut self) -> Self {
        self.show_paths = true;
        self
    }

    /// Truncate the rendering below the given depth.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Renders the tree to a string.
    pub fn print(&self, node: &Node) -> String {
        let mut out = String::new();
        self.print_node(node, &Path::root(), "", true, true, &mut out);
        out
    }

    fn print_node(
        &self,
        node: &Node,
        path: &Path,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
    ) {
        if let Some(max) = self.max_depth {
            if path.depth() > max {
                return;
            }
        }
        let connector = if is_root {
            ""
        } else if is_last {
            "└─ "
        } else {
            "├─ "
        };
        let _ = write!(out, "{prefix}{connector}{node}");
        if self.show_paths {
            let _ = write!(out, "   [{path}]");
        }
        out.push('\n');

        let child_prefix = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        let n = node.children().len();
        for (i, child) in node.children().iter().enumerate() {
            self.print_node(child, &path.child(i), &child_prefix, i + 1 == n, false, out);
        }
    }
}

/// Convenience wrapper: pretty-print with default settings.
pub fn pretty(node: &Node) -> String {
    TreePrinter::new().print(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::NodeKind;

    fn tree() -> Node {
        Node::new(NodeKind::Select)
            .with_child(
                Node::new(NodeKind::Project)
                    .with_child(Node::new(NodeKind::ProjClause).with_child(Node::column("sales"))),
            )
            .with_child(Node::new(NodeKind::From).with_child(Node::table("t")))
    }

    #[test]
    fn prints_every_node_once() {
        let t = tree();
        let s = pretty(&t);
        assert_eq!(s.lines().count(), t.size());
        assert!(s.contains("Select"));
        assert!(s.contains("ColExpr(name=sales)"));
        assert!(s.contains("TableRef(name=t)"));
    }

    #[test]
    fn paths_mode_appends_locations() {
        let s = TreePrinter::new().with_paths().print(&tree());
        assert!(s.contains("[0/0/0]"));
        assert!(s.contains("[/]"));
    }

    #[test]
    fn max_depth_truncates() {
        let s = TreePrinter::new().with_max_depth(1).print(&tree());
        assert!(s.contains("Project"));
        assert!(!s.contains("ColExpr"));
    }

    #[test]
    fn uses_box_drawing_connectors() {
        let s = pretty(&tree());
        assert!(s.contains("├─"));
        assert!(s.contains("└─"));
    }
}
