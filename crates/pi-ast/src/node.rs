//! The AST node type and tree manipulation primitives.
//!
//! Every query in the log is one [`Node`] tree.  Nodes follow the model of paper §4.1: a node
//! consists of its kind, a set of attribute/value pairs, and an ordered list of children.
//! Interactions are implemented by *replacing* the subtree at a widget's path with a subtree
//! from the widget's domain ([`Node::replaced`]), which is exactly the `d(q) = q'` semantics
//! of Example 4.2.
//!
//! Two representation choices make the mining pipeline fast:
//!
//! * every node carries a **memoized structural hash**, maintained bottom-up by the
//!   constructors and the path-based mutators, so [`Node::structural_hash`] and [`Node::id`]
//!   are O(1) — pairwise tree alignment (the dominant cost in the paper's Figures 11/12)
//!   compares subtrees by cached hash instead of deep traversal;
//! * attribute names are **interned** ([`Sym`]), so the per-node key storage is a copyable
//!   `u32` and label comparison never touches string bytes.
//!
//! To keep the memo sound, all mutation goes through methods that restore the hash invariant
//! ([`Node::set_attr`], [`Node::push_child`], [`Node::replace_at`], [`Node::insert_at`],
//! [`Node::remove_at`]); there is deliberately no public `&mut` access to the child list.
//!
//! # Copy-on-write subtrees
//!
//! A [`Node`] is a cheap handle (`Arc` around the payload), so [`Node::clone`] is O(1) — a
//! single refcount bump — and clones *alias* the whole subtree.  The path mutators un-share
//! lazily with [`Arc::make_mut`]: a mutation at `path` copies only the payloads on the
//! root→`path` spine (O(depth·branching)); every subtree hanging off the spine keeps
//! pointing at the storage it already shared with the pre-mutation tree.  [`Node::replaced`]
//! / [`Node::inserted`] / [`Node::removed`] therefore cost the spine, not the tree — the
//! persistent-tree sharing that keeps per-edit cost proportional to the edit path.  Sharing
//! is never observable through `&self` methods; [`Node::ptr_eq`] exists so tests can assert
//! the aliasing contract.

use crate::intern::{str_hash64, Sym};
use crate::kind::{NodeKind, PrimitiveType};
use crate::path::Path;
use crate::value::AttrValue;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// A stable identity for a subtree, derived from its structural hash.
///
/// Two subtrees have equal [`NodeId`]s iff they are structurally identical (same kinds,
/// attributes and child order).  Used for cheap deduplication of widget domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{:016x}", self.0)
    }
}

/// Error returned when a path-based mutation cannot be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplaceError {
    /// The path does not designate an existing node (and is not a valid append location).
    PathNotFound {
        /// The offending path.
        path: Path,
    },
    /// Removal of the root node was requested, which would leave no tree.
    CannotRemoveRoot,
}

impl fmt::Display for ReplaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplaceError::PathNotFound { path } => write!(f, "path {path} not found in tree"),
            ReplaceError::CannotRemoveRoot => write!(f, "cannot remove the root node"),
        }
    }
}

impl std::error::Error for ReplaceError {}

/// A node of a query abstract syntax tree.
///
/// `Node` is a cheap handle: the node payload (kind, attributes, children) lives behind a
/// single [`Arc`], so [`Node::clone`] is one refcount bump and clones *alias* the whole
/// subtree.  The mutators un-share copy-on-write (see the crate docs on the sharing
/// contract): a path mutation copies only the `NodeInner`s on the root→path spine, and a
/// sibling hanging off the spine is carried over by bumping its handle — never by walking it.
#[derive(Debug, Clone)]
pub struct Node(Arc<NodeInner>);

/// The payload of one node.  Children are stored inline (`Vec<Node>` is a vector of
/// handles), so un-sharing one tree level is a single allocation plus one refcount bump per
/// child; the attribute list is `Arc`-shared separately so spine copies never re-clone
/// attribute strings.
#[derive(Debug)]
struct NodeInner {
    kind: NodeKind,
    attrs: Arc<Vec<(Sym, AttrValue)>>,
    children: Vec<Node>,
    /// Memoized hash of the node *label* (kind + attributes), the prefix state of `hash`.
    /// Lets a child-list change refresh `hash` without re-hashing attribute strings — the
    /// spine refresh done by every COW path mutation touches only cached `u64`s.
    label_hash: u64,
    /// Memoized structural hash of the subtree rooted here; maintained by every mutator.
    hash: u64,
}

impl Clone for NodeInner {
    /// The un-sharing copy behind [`Arc::make_mut`]: attribute list and children are carried
    /// over by refcount bumps (O(arity)), never by deep traversal.
    fn clone(&self) -> Self {
        NodeInner {
            kind: self.kind.clone(),
            attrs: Arc::clone(&self.attrs),
            children: self.children.clone(),
            label_hash: self.label_hash,
            hash: self.hash,
        }
    }
}

impl NodeInner {
    /// Restores the hash invariant after a change to the direct children.  Children must
    /// already satisfy the invariant; `label_hash` must be current (only `set_attr` changes
    /// the label).
    fn refresh_hash(&mut self) {
        self.hash = children_hash(self.label_hash, &self.children);
    }

    /// Restores both memos after a label (attribute) change.
    fn refresh_label_and_hash(&mut self) {
        self.label_hash = label_hash_of(&self.kind, &self.attrs);
        self.refresh_hash();
    }
}

/// The attribute list shared by every attribute-less node (leaves are common, so they should
/// not pay an allocation for an empty attribute table).
fn empty_attrs() -> Arc<Vec<(Sym, AttrValue)>> {
    static EMPTY: OnceLock<Arc<Vec<(Sym, AttrValue)>>> = OnceLock::new();
    EMPTY.get_or_init(Default::default).clone()
}

// ---------------------------------------------------------------------- hashing internals

/// FNV-1a accumulator used to hash node kinds and attribute values deterministically
/// (no per-process random state, unlike `DefaultHasher` keys obtained via `RandomState`).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// One splitmix64-style mixing step; order-sensitive, so sibling order matters.
fn mix(acc: u64, v: u64) -> u64 {
    let mut x = acc
        .rotate_left(5)
        .wrapping_add(v)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// Domain separator baked in at compile time (str_hash64 is `const`).
const NODE_HASH_SEED: u64 = str_hash64("pi-ast.node");

/// Hashes a node's label (kind + attributes); the accumulator state that [`children_hash`]
/// continues from.  Memoized per node as `Node::label_hash` and recomputed only when the kind
/// or attributes change.
fn label_hash_of(kind: &NodeKind, attrs: &[(Sym, AttrValue)]) -> u64 {
    let mut h = mix(NODE_HASH_SEED, hash_of(kind));
    h = mix(h, attrs.len() as u64);
    for (key, value) in attrs {
        h = mix(h, key.hash64());
        h = mix(h, hash_of(value));
    }
    h
}

/// Extends a label hash with the children's *cached* subtree hashes — O(arity) `u64` mixes,
/// no string hashing and no subtree traversal.
fn children_hash(label_hash: u64, children: &[Node]) -> u64 {
    let mut h = mix(label_hash, children.len() as u64);
    for child in children {
        h = mix(h, child.0.hash);
    }
    h
}

impl Node {
    /// Creates a node of the given kind with no attributes and no children.
    pub fn new(kind: NodeKind) -> Self {
        let label_hash = label_hash_of(&kind, &[]);
        Node(Arc::new(NodeInner {
            kind,
            attrs: empty_attrs(),
            children: Vec::new(),
            label_hash,
            hash: children_hash(label_hash, &[]),
        }))
    }

    /// Exclusive access to the payload, un-sharing it copy-on-write if aliased.  The copy is
    /// shallow — children are carried over by refcount bumps — which is what bounds path
    /// mutation to the root→path spine.  Callers must restore the hash invariant afterwards
    /// (`refresh_hash` / `refresh_label_and_hash` on the returned payload).
    fn inner_mut(&mut self) -> &mut NodeInner {
        Arc::make_mut(&mut self.0)
    }

    // ------------------------------------------------------------------ constructors

    /// A column reference node.
    pub fn column(name: &str) -> Self {
        Node::new(NodeKind::ColExpr).with_attr("name", name)
    }

    /// A column reference qualified by a table name (`t.col`).
    pub fn qualified_column(table: &str, name: &str) -> Self {
        Node::new(NodeKind::ColExpr)
            .with_attr("name", name)
            .with_attr("table", table)
    }

    /// A string literal node.
    pub fn string(value: &str) -> Self {
        Node::new(NodeKind::StrExpr).with_attr("value", value)
    }

    /// An integer literal node.
    pub fn int(value: i64) -> Self {
        Node::new(NodeKind::NumExpr).with_attr("value", AttrValue::Int(value))
    }

    /// A floating point literal node.
    pub fn float(value: f64) -> Self {
        Node::new(NodeKind::NumExpr).with_attr("value", AttrValue::Float(value))
    }

    /// A hexadecimal literal node (`0x400`), as found throughout the SDSS log.
    pub fn hex(value: i64) -> Self {
        Node::new(NodeKind::HexExpr).with_attr("value", AttrValue::Int(value))
    }

    /// A base table reference.
    pub fn table(name: &str) -> Self {
        Node::new(NodeKind::TableRef).with_attr("name", name)
    }

    /// The `*` projection.
    pub fn star() -> Self {
        Node::new(NodeKind::Star)
    }

    // ------------------------------------------------------------------ builder-style setters

    /// Adds an attribute (builder style).
    pub fn with_attr<V: Into<AttrValue>>(mut self, key: &str, value: V) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Adds a child (builder style).
    pub fn with_child(mut self, child: Node) -> Self {
        self.push_child(child);
        self
    }

    /// Adds several children (builder style).
    pub fn with_children<I: IntoIterator<Item = Node>>(mut self, children: I) -> Self {
        let inner = self.inner_mut();
        inner.children.extend(children);
        inner.refresh_hash();
        self
    }

    /// Sets (or overwrites) an attribute.
    pub fn set_attr<V: Into<AttrValue>>(&mut self, key: &str, value: V) {
        let key = Sym::intern(key);
        let value = value.into();
        let inner = self.inner_mut();
        let attrs = Arc::make_mut(&mut inner.attrs);
        if let Some(slot) = attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            attrs.push((key, value));
        }
        inner.refresh_label_and_hash();
    }

    /// Appends a child.
    pub fn push_child(&mut self, child: Node) {
        let inner = self.inner_mut();
        inner.children.push(child);
        inner.refresh_hash();
    }

    // ------------------------------------------------------------------ accessors

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.0.kind.clone()
    }

    /// A reference to the node kind (no clone).
    pub fn kind_ref(&self) -> &NodeKind {
        &self.0.kind
    }

    /// The attribute/value pairs, in insertion order, with interned keys.
    pub fn attrs(&self) -> &[(Sym, AttrValue)] {
        &self.0.attrs
    }

    /// Looks up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        // `lookup` (not `intern`) so probing with never-seen keys doesn't grow the table.
        let key = Sym::lookup(key)?;
        self.0.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Looks up a string attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(AttrValue::as_str)
    }

    /// Looks up a numeric attribute by key (ints are widened to `f64`).
    pub fn attr_num(&self, key: &str) -> Option<f64> {
        self.attr(key).and_then(AttrValue::as_num)
    }

    /// The ordered children.
    pub fn children(&self) -> &[Node] {
        &self.0.children
    }

    /// Number of direct children.
    pub fn arity(&self) -> usize {
        self.0.children.len()
    }

    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.0.children.is_empty()
    }

    // ------------------------------------------------------------------ tree metrics

    /// Total number of nodes in the subtree rooted here.
    pub fn size(&self) -> usize {
        1 + self.0.children.iter().map(Node::size).sum::<usize>()
    }

    /// Height of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.0.children.iter().map(Node::depth).max().unwrap_or(0)
    }

    /// Number of leaves in the subtree.
    pub fn leaf_count(&self) -> usize {
        if self.0.children.is_empty() {
            1
        } else {
            self.0.children.iter().map(Node::leaf_count).sum()
        }
    }

    // ------------------------------------------------------------------ identity & typing

    /// Structural hash of the subtree; equal trees hash equally.
    ///
    /// O(1): the hash is memoized at construction and maintained by every mutator.
    #[inline]
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }

    /// The structural identity of the subtree (O(1), backed by the memoized hash).
    #[inline]
    pub fn id(&self) -> NodeId {
        NodeId(self.0.hash)
    }

    /// True when `self` and `other` are the same physical subtree (`Arc::ptr_eq` on the
    /// shared payload).
    ///
    /// Structural equality does *not* imply sharing; this is a physical-aliasing probe used
    /// by tests to verify the copy-on-write contract — after [`Node::replaced`], every
    /// subtree off the root→path spine must still share storage with the original tree.
    pub fn ptr_eq(&self, other: &Node) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// True when two subtrees are structurally identical, decided by the memoized hash alone.
    ///
    /// This is the O(1) comparison the aligner uses to skip equal subtrees; a 64-bit
    /// collision would merge two distinct subtrees, which the paper's purely syntactic
    /// pipeline tolerates (the same assumption underlies its hash-anchored LCS).
    #[inline]
    pub fn same_tree(&self, other: &Node) -> bool {
        self.0.hash == other.0.hash
    }

    /// Recomputes the structural hash from scratch, ignoring the memo (O(subtree)).
    ///
    /// Exists so tests and debug assertions can validate the memo invariant; production code
    /// should always use [`Node::structural_hash`].
    pub fn recomputed_hash(&self) -> u64 {
        let mut h = mix(NODE_HASH_SEED, hash_of(&self.0.kind));
        h = mix(h, self.0.attrs.len() as u64);
        for (key, value) in self.0.attrs.iter() {
            h = mix(h, key.hash64());
            h = mix(h, hash_of(value));
        }
        h = mix(h, self.0.children.len() as u64);
        for child in self.0.children.iter() {
            h = mix(h, child.recomputed_hash());
        }
        h
    }

    /// True when two nodes agree on kind and attributes (children are ignored).
    pub fn same_label(&self, other: &Node) -> bool {
        self.0.kind == other.0.kind && self.0.attrs == other.0.attrs
    }

    /// The primitive type of this subtree as seen by widget rules.
    ///
    /// Terminal literal kinds use the grammar annotation; anything with children, or any
    /// non-annotated kind, is a `tree`.
    pub fn primitive_type(&self) -> PrimitiveType {
        if self.0.children.is_empty() {
            self.0.kind.terminal_type().unwrap_or(PrimitiveType::Tree)
        } else {
            PrimitiveType::Tree
        }
    }

    /// For numeric terminals, the numeric value (used for slider range extrapolation).
    pub fn numeric_value(&self) -> Option<f64> {
        if self.primitive_type() == PrimitiveType::Num {
            self.attr_num("value")
        } else {
            None
        }
    }

    /// A short human-readable label for this subtree, used in widget option lists.
    pub fn label(&self) -> String {
        match &self.0.kind {
            NodeKind::ColExpr => {
                let name = self.attr_str("name").unwrap_or("?");
                match self.attr_str("table") {
                    Some(t) => format!("{t}.{name}"),
                    None => name.to_string(),
                }
            }
            NodeKind::StrExpr | NodeKind::BoolExpr => {
                self.attr_str("value").unwrap_or("?").to_string()
            }
            NodeKind::NumExpr => self
                .attr("value")
                .map(|v| v.render())
                .unwrap_or_else(|| "?".into()),
            NodeKind::HexExpr => self
                .attr("value")
                .and_then(AttrValue::as_int)
                .map(|v| format!("0x{v:x}"))
                .unwrap_or_else(|| "?".into()),
            NodeKind::TableRef => self.attr_str("name").unwrap_or("?").to_string(),
            NodeKind::Star => "*".to_string(),
            NodeKind::Null => "NULL".to_string(),
            NodeKind::FuncName => self.attr_str("name").unwrap_or("?").to_string(),
            NodeKind::FuncCall | NodeKind::AggCall => {
                let name = self
                    .children()
                    .first()
                    .filter(|c| c.0.kind == NodeKind::FuncName)
                    .and_then(|c| c.attr_str("name"))
                    .or_else(|| self.attr_str("name"))
                    .unwrap_or("?");
                format!("{name}(…)")
            }
            other => format!("{}[{}]", other.name(), self.size()),
        }
    }

    // ------------------------------------------------------------------ navigation & mutation

    /// The subtree at `path`, if it exists.
    pub fn get(&self, path: &Path) -> Option<&Node> {
        let mut cur = self;
        for &step in path.steps() {
            cur = cur.0.children.get(step)?;
        }
        Some(cur)
    }

    /// Replaces the subtree at `path` with `subtree`, in place.
    ///
    /// If `path` designates a position exactly one past the end of an existing node's child
    /// list, the subtree is *appended* there; this is how additions (diffs whose "before" side
    /// is null) are applied.
    pub fn replace_at(&mut self, path: &Path, subtree: Node) -> Result<(), ReplaceError> {
        self.replace_steps(path.steps(), subtree)
            .map_err(|_| ReplaceError::PathNotFound { path: path.clone() })
    }

    fn replace_steps(&mut self, steps: &[usize], subtree: Node) -> Result<(), ()> {
        match steps {
            [] => {
                *self = subtree;
                Ok(())
            }
            [idx, rest @ ..] => {
                // Validate the index before un-sharing this level: an out-of-bounds step
                // must not copy the payload.  (A failure deeper down may still have
                // un-shared the levels above it — harmless, since contents are unchanged.)
                let arity = self.0.children.len();
                if rest.is_empty() && *idx == arity {
                    let inner = self.inner_mut();
                    inner.children.push(subtree);
                    inner.refresh_hash();
                } else if *idx < arity {
                    let inner = self.inner_mut();
                    inner.children[*idx].replace_steps(rest, subtree)?;
                    inner.refresh_hash();
                } else {
                    return Err(());
                }
                Ok(())
            }
        }
    }

    /// Returns a copy of this tree with the subtree at `path` replaced by `subtree`.
    ///
    /// O(depth·branching), not O(tree): the clone is a refcount bump and `replace_at`
    /// un-shares only the root→`path` spine; every untouched subtree is physically shared
    /// between `self` and the result (see [`Node::ptr_eq`]).
    pub fn replaced(&self, path: &Path, subtree: Node) -> Result<Node, ReplaceError> {
        let mut out = self.clone();
        out.replace_at(path, subtree)?;
        Ok(out)
    }

    /// Inserts `subtree` so that it ends up *at* `path`, shifting later siblings right.
    /// A path pointing one slot past the end of the parent's child list appends.
    pub fn insert_at(&mut self, path: &Path, subtree: Node) -> Result<(), ReplaceError> {
        let Some(parent_path) = path.parent() else {
            // Inserting at the root is a whole-tree replacement.
            *self = subtree;
            return Ok(());
        };
        let idx = path.last().expect("non-root path has a last step");
        self.insert_steps(parent_path.steps(), idx, subtree)
            .map_err(|_| ReplaceError::PathNotFound { path: path.clone() })
    }

    fn insert_steps(&mut self, steps: &[usize], idx: usize, subtree: Node) -> Result<(), ()> {
        match steps {
            [] => {
                if idx > self.0.children.len() {
                    return Err(());
                }
                let inner = self.inner_mut();
                inner.children.insert(idx, subtree);
                inner.refresh_hash();
                Ok(())
            }
            [step, rest @ ..] => {
                if *step >= self.0.children.len() {
                    return Err(());
                }
                let inner = self.inner_mut();
                inner.children[*step].insert_steps(rest, idx, subtree)?;
                inner.refresh_hash();
                Ok(())
            }
        }
    }

    /// Returns a copy of this tree with `subtree` inserted at `path`.
    ///
    /// Like [`Node::replaced`], copies only the root→`path` spine.
    pub fn inserted(&self, path: &Path, subtree: Node) -> Result<Node, ReplaceError> {
        let mut out = self.clone();
        out.insert_at(path, subtree)?;
        Ok(out)
    }

    /// Removes the subtree at `path`, shifting later siblings left.  Used to apply deletions
    /// (diffs whose "after" side is null).
    pub fn remove_at(&mut self, path: &Path) -> Result<Node, ReplaceError> {
        if path.is_root() {
            return Err(ReplaceError::CannotRemoveRoot);
        }
        self.remove_steps(path.steps())
            .map_err(|_| ReplaceError::PathNotFound { path: path.clone() })
    }

    fn remove_steps(&mut self, steps: &[usize]) -> Result<Node, ()> {
        match steps {
            [] => unreachable!("remove_at rejects the root path"),
            [idx] => {
                if *idx >= self.0.children.len() {
                    return Err(());
                }
                let inner = self.inner_mut();
                let removed = inner.children.remove(*idx);
                inner.refresh_hash();
                Ok(removed)
            }
            [step, rest @ ..] => {
                if *step >= self.0.children.len() {
                    return Err(());
                }
                let inner = self.inner_mut();
                let removed = inner.children[*step].remove_steps(rest)?;
                inner.refresh_hash();
                Ok(removed)
            }
        }
    }

    /// Returns a copy of this tree with the subtree at `path` removed.
    ///
    /// Like [`Node::replaced`], copies only the root→`path` spine.
    pub fn removed(&self, path: &Path) -> Result<Node, ReplaceError> {
        let mut out = self.clone();
        out.remove_at(path)?;
        Ok(out)
    }

    // ------------------------------------------------------------------ traversal

    /// Pre-order traversal of `(path, node)` pairs, root first.
    pub fn preorder(&self) -> Vec<(Path, &Node)> {
        let mut out = Vec::with_capacity(self.size());
        self.preorder_into(Path::root(), &mut out);
        out
    }

    fn preorder_into<'a>(&'a self, path: Path, out: &mut Vec<(Path, &'a Node)>) {
        out.push((path.clone(), self));
        for (i, child) in self.0.children.iter().enumerate() {
            child.preorder_into(path.child(i), out);
        }
    }

    /// Paths of all nodes whose kind satisfies `pred`.
    pub fn find_paths<F: Fn(&Node) -> bool>(&self, pred: F) -> Vec<Path> {
        self.preorder()
            .into_iter()
            .filter(|(_, n)| pred(n))
            .map(|(p, _)| p)
            .collect()
    }

    /// Iterates over every node in the subtree (pre-order) without materialising paths.
    pub fn visit<F: FnMut(&Node)>(&self, f: &mut F) {
        f(self);
        for child in self.0.children.iter() {
            child.visit(f);
        }
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        // COW-aliased subtrees short-circuit on pointer identity; the memoized hash then
        // filters out almost all unequal pairs in O(1); the structural compare below keeps
        // `Eq` sound in the (vanishingly unlikely) event of a collision.
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.hash == other.0.hash
                && self.0.kind == other.0.kind
                && (Arc::ptr_eq(&self.0.attrs, &other.0.attrs) || self.0.attrs == other.0.attrs)
                && self.0.children == other.0.children)
    }
}

impl Eq for Node {}

impl Hash for Node {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.kind.name())?;
        if !self.0.attrs.is_empty() {
            write!(f, "(")?;
            for (i, (k, v)) in self.0.attrs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Node {
        // SELECT sales, costs FROM t WHERE cty = 'USA'
        Node::new(NodeKind::Select)
            .with_child(
                Node::new(NodeKind::Project)
                    .with_child(Node::new(NodeKind::ProjClause).with_child(Node::column("sales")))
                    .with_child(Node::new(NodeKind::ProjClause).with_child(Node::column("costs"))),
            )
            .with_child(Node::new(NodeKind::From).with_child(Node::table("t")))
            .with_child(
                Node::new(NodeKind::Where).with_child(
                    Node::new(NodeKind::BiExpr)
                        .with_attr("op", "=")
                        .with_child(Node::column("cty"))
                        .with_child(Node::string("USA")),
                ),
            )
    }

    #[test]
    fn constructors_set_expected_attrs() {
        assert_eq!(Node::column("a").attr_str("name"), Some("a"));
        assert_eq!(Node::string("x").attr_str("value"), Some("x"));
        assert_eq!(Node::int(5).attr_num("value"), Some(5.0));
        assert_eq!(
            Node::hex(0x400).attr("value").unwrap().as_int(),
            Some(0x400)
        );
        assert_eq!(Node::table("t").attr_str("name"), Some("t"));
    }

    #[test]
    fn get_follows_paths_like_the_paper() {
        let t = sample_tree();
        // 0/1/0 is the second projection clause's column (paper Table 1, d1).
        let p: Path = "0/1/0".parse().unwrap();
        let n = t.get(&p).unwrap();
        assert_eq!(n.kind(), NodeKind::ColExpr);
        assert_eq!(n.attr_str("name"), Some("costs"));
        // 2/0/1 is the string literal in the predicate (paper Table 1, d2 uses 2/0/0/1 with an
        // extra level; our WHERE has one fewer wrapper).
        let p2: Path = "2/0/1".parse().unwrap();
        assert_eq!(t.get(&p2).unwrap().attr_str("value"), Some("USA"));
        assert!(t.get(&"9/9".parse().unwrap()).is_none());
    }

    #[test]
    fn replace_at_swaps_subtrees() {
        let t = sample_tree();
        let p: Path = "2/0/1".parse().unwrap();
        let t2 = t.replaced(&p, Node::string("EUR")).unwrap();
        assert_eq!(t2.get(&p).unwrap().attr_str("value"), Some("EUR"));
        // original untouched
        assert_eq!(t.get(&p).unwrap().attr_str("value"), Some("USA"));
        // replacing the root swaps the whole query
        let swapped = t.replaced(&Path::root(), Node::star()).unwrap();
        assert_eq!(swapped.kind(), NodeKind::Star);
    }

    #[test]
    fn replace_at_appends_when_index_is_one_past_end() {
        let mut t = sample_tree();
        // Append a GROUP BY clause as the 4th child of the root.
        let p: Path = "3".parse().unwrap();
        t.replace_at(&p, Node::new(NodeKind::GroupBy)).unwrap();
        assert_eq!(t.arity(), 4);
        // Far past the end is an error.
        let err = t.replace_at(&"9".parse().unwrap(), Node::star());
        assert!(err.is_err());
    }

    #[test]
    fn remove_at_deletes_and_shifts() {
        let mut t = sample_tree();
        let removed = t.remove_at(&"0/0".parse().unwrap()).unwrap();
        assert_eq!(removed.kind(), NodeKind::ProjClause);
        // The remaining projection clause shifted into slot 0.
        assert_eq!(
            t.get(&"0/0/0".parse().unwrap()).unwrap().attr_str("name"),
            Some("costs")
        );
        assert!(t.remove_at(&Path::root()).is_err());
        assert!(t.remove_at(&"0/7".parse().unwrap()).is_err());
    }

    #[test]
    fn insert_at_shifts_right_and_appends() {
        let mut t = sample_tree();
        t.insert_at(
            &"0/1".parse().unwrap(),
            Node::new(NodeKind::ProjClause).with_child(Node::column("day")),
        )
        .unwrap();
        assert_eq!(t.get(&"0".parse().unwrap()).unwrap().arity(), 3);
        assert_eq!(
            t.get(&"0/1/0".parse().unwrap()).unwrap().attr_str("name"),
            Some("day")
        );
        assert_eq!(
            t.get(&"0/2/0".parse().unwrap()).unwrap().attr_str("name"),
            Some("costs")
        );
        assert_eq!(t.structural_hash(), t.recomputed_hash());
        // Appending one past the end works; beyond is an error.
        assert!(t.insert_at(&"3".parse().unwrap(), Node::star()).is_ok());
        assert!(t.insert_at(&"9".parse().unwrap(), Node::star()).is_err());
        // An inserted() copy leaves the original alone.
        let t2 = t.inserted(&"0/0".parse().unwrap(), Node::star()).unwrap();
        assert_eq!(t2.get(&"0".parse().unwrap()).unwrap().arity(), 4);
        assert_eq!(t.get(&"0".parse().unwrap()).unwrap().arity(), 3);
    }

    #[test]
    fn metrics_and_traversal_agree() {
        let t = sample_tree();
        let pre = t.preorder();
        assert_eq!(pre.len(), t.size());
        assert_eq!(pre[0].0, Path::root());
        // Each (path, node) pair is consistent with get().
        for (p, n) in &pre {
            assert!(std::ptr::eq(t.get(p).unwrap(), *n));
        }
        assert!(t.depth() >= 4);
        assert!(t.leaf_count() >= 4);
    }

    #[test]
    fn structural_hash_tracks_equality() {
        let a = sample_tree();
        let b = sample_tree();
        assert_eq!(a, b);
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_eq!(a.id(), b.id());
        assert!(a.same_tree(&b));
        let c = a
            .replaced(&"2/0/1".parse().unwrap(), Node::string("EUR"))
            .unwrap();
        assert_ne!(a, c);
        assert_ne!(a.structural_hash(), c.structural_hash());
        assert!(!a.same_tree(&c));
    }

    #[test]
    fn memoized_hash_survives_every_mutator() {
        // The memo must equal a from-scratch recompute after arbitrary mutation sequences.
        let mut t = sample_tree();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.replace_at(&"2/0/1".parse().unwrap(), Node::string("EUR"))
            .unwrap();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.remove_at(&"0/0".parse().unwrap()).unwrap();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.insert_at(&"0/0".parse().unwrap(), Node::new(NodeKind::ProjClause))
            .unwrap();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.set_attr("distinct", true);
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.push_child(Node::new(NodeKind::Limit).with_child(Node::int(5)));
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        // Mutated copies and their sources both stay consistent.
        let copy = t
            .replaced(&"1/0".parse().unwrap(), Node::table("u"))
            .unwrap();
        assert_eq!(copy.structural_hash(), copy.recomputed_hash());
        assert_eq!(t.structural_hash(), t.recomputed_hash());
    }

    #[test]
    fn replaced_shares_untouched_subtrees_with_the_original() {
        let t = sample_tree();
        let t2 = t
            .replaced(&"2/0/1".parse().unwrap(), Node::string("EUR"))
            .unwrap();
        // Subtrees off the root→path spine are the same physical allocation.
        for path in ["0", "1", "0/0", "0/1", "2/0/0"] {
            let p: Path = path.parse().unwrap();
            assert!(
                t.get(&p).unwrap().ptr_eq(t2.get(&p).unwrap()),
                "subtree at {path} must be shared"
            );
        }
        // Spine nodes (root, 2, 2/0) are copies, and the replaced leaf differs.
        assert!(!t.ptr_eq(&t2));
        for path in ["2", "2/0", "2/0/1"] {
            let p: Path = path.parse().unwrap();
            assert!(!t.get(&p).unwrap().ptr_eq(t2.get(&p).unwrap()));
        }
        // Same sharing discipline for inserted() and removed().
        let t3 = t.inserted(&"0/1".parse().unwrap(), Node::star()).unwrap();
        assert!(t
            .get(&"1".parse().unwrap())
            .unwrap()
            .ptr_eq(t3.get(&"1".parse().unwrap()).unwrap()));
        assert!(t
            .get(&"0/0".parse().unwrap())
            .unwrap()
            .ptr_eq(t3.get(&"0/0".parse().unwrap()).unwrap()));
        let t4 = t.removed(&"0/0".parse().unwrap()).unwrap();
        assert!(t
            .get(&"2".parse().unwrap())
            .unwrap()
            .ptr_eq(t4.get(&"2".parse().unwrap()).unwrap()));
        // The removed subtree itself is handed back still sharing the original's storage.
        let cut = t.clone().remove_at(&"0/0".parse().unwrap()).unwrap();
        assert!(cut.ptr_eq(t.get(&"0/0".parse().unwrap()).unwrap()));
    }

    #[test]
    fn mutating_a_cow_copy_never_changes_the_original() {
        let t = sample_tree();
        let pristine_render = crate::pretty(&t).to_string();
        let pristine_hash = t.structural_hash();

        let mut copy = t
            .replaced(&"2/0/1".parse().unwrap(), Node::string("EUR"))
            .unwrap();
        // Pile further mutations onto the aliased copy through every mutator.
        copy.replace_at(&"0/0/0".parse().unwrap(), Node::column("zzz"))
            .unwrap();
        copy.set_attr("distinct", true);
        copy.push_child(Node::new(NodeKind::Limit).with_child(Node::int(5)));
        copy.insert_at(&"0/0".parse().unwrap(), Node::new(NodeKind::ProjClause))
            .unwrap();
        copy.remove_at(&"1/0".parse().unwrap()).unwrap();

        // The original is bit-for-bit what it was, and both memos are still sound.
        assert_eq!(crate::pretty(&t).to_string(), pristine_render);
        assert_eq!(t.structural_hash(), pristine_hash);
        assert_eq!(t.structural_hash(), t.recomputed_hash());
        assert_eq!(copy.structural_hash(), copy.recomputed_hash());
    }

    #[test]
    fn clones_are_aliases_until_mutated() {
        let t = sample_tree();
        let c = t.clone();
        assert!(t.ptr_eq(&c));
        let mut m = t.clone();
        m.set_attr("distinct", true);
        assert!(!t.ptr_eq(&m));
        // Un-sharing the root does not un-share the children.
        assert!(t.children()[0].ptr_eq(&m.children()[0]));
    }

    #[test]
    fn primitive_types_follow_annotations() {
        assert_eq!(Node::string("x").primitive_type(), PrimitiveType::Str);
        assert_eq!(Node::int(5).primitive_type(), PrimitiveType::Num);
        assert_eq!(Node::hex(16).primitive_type(), PrimitiveType::Num);
        assert_eq!(Node::column("c").primitive_type(), PrimitiveType::Str);
        assert_eq!(sample_tree().primitive_type(), PrimitiveType::Tree);
        // A column expression *with* children would be a tree.
        let weird = Node::column("c").with_child(Node::int(1));
        assert_eq!(weird.primitive_type(), PrimitiveType::Tree);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(Node::column("a").label(), "a");
        assert_eq!(Node::qualified_column("g", "objID").label(), "g.objID");
        assert_eq!(Node::string("USA").label(), "USA");
        assert_eq!(Node::int(42).label(), "42");
        assert_eq!(Node::hex(0x400).label(), "0x400");
        assert_eq!(Node::star().label(), "*");
    }

    #[test]
    fn set_attr_overwrites() {
        let mut n = Node::column("a");
        n.set_attr("name", "b");
        assert_eq!(n.attr_str("name"), Some("b"));
        assert_eq!(n.attrs().len(), 1);
        assert_eq!(n.structural_hash(), n.recomputed_hash());
    }

    #[test]
    fn numeric_value_only_for_numeric_terminals() {
        assert_eq!(Node::int(7).numeric_value(), Some(7.0));
        assert_eq!(Node::float(2.5).numeric_value(), Some(2.5));
        assert_eq!(Node::hex(0x10).numeric_value(), Some(16.0));
        assert_eq!(Node::string("7").numeric_value(), None);
        assert_eq!(sample_tree().numeric_value(), None);
    }

    #[test]
    fn attr_probe_with_unknown_key_is_none() {
        // attr() must not intern unseen keys; either way it reports absence.
        let n = Node::column("a");
        assert_eq!(n.attr("this_key_is_never_set_anywhere"), None);
        assert_eq!(n.attr_str("another_never_set_key"), None);
    }
}
