//! The AST node type and tree manipulation primitives.
//!
//! Every query in the log is one [`Node`] tree.  Nodes follow the model of paper §4.1: a node
//! consists of its kind, a set of attribute/value pairs, and an ordered list of children.
//! Interactions are implemented by *replacing* the subtree at a widget's path with a subtree
//! from the widget's domain ([`Node::replaced`]), which is exactly the `d(q) = q'` semantics
//! of Example 4.2.
//!
//! Two representation choices make the mining pipeline fast:
//!
//! * every node carries a **memoized structural hash**, maintained bottom-up by the
//!   constructors and the path-based mutators, so [`Node::structural_hash`] and [`Node::id`]
//!   are O(1) — pairwise tree alignment (the dominant cost in the paper's Figures 11/12)
//!   compares subtrees by cached hash instead of deep traversal;
//! * attribute names are **interned** ([`Sym`]), so the per-node key storage is a copyable
//!   `u32` and label comparison never touches string bytes.
//!
//! To keep the memo sound, all mutation goes through methods that restore the hash invariant
//! ([`Node::set_attr`], [`Node::push_child`], [`Node::replace_at`], [`Node::insert_at`],
//! [`Node::remove_at`]); there is deliberately no public `&mut` access to the child list.

use crate::intern::{str_hash64, Sym};
use crate::kind::{NodeKind, PrimitiveType};
use crate::path::Path;
use crate::value::AttrValue;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A stable identity for a subtree, derived from its structural hash.
///
/// Two subtrees have equal [`NodeId`]s iff they are structurally identical (same kinds,
/// attributes and child order).  Used for cheap deduplication of widget domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{:016x}", self.0)
    }
}

/// Error returned when a path-based mutation cannot be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplaceError {
    /// The path does not designate an existing node (and is not a valid append location).
    PathNotFound {
        /// The offending path.
        path: Path,
    },
    /// Removal of the root node was requested, which would leave no tree.
    CannotRemoveRoot,
}

impl fmt::Display for ReplaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplaceError::PathNotFound { path } => write!(f, "path {path} not found in tree"),
            ReplaceError::CannotRemoveRoot => write!(f, "cannot remove the root node"),
        }
    }
}

impl std::error::Error for ReplaceError {}

/// A node of a query abstract syntax tree.
#[derive(Debug, Clone)]
pub struct Node {
    kind: NodeKind,
    attrs: Vec<(Sym, AttrValue)>,
    children: Vec<Node>,
    /// Memoized structural hash of the subtree rooted here; maintained by every mutator.
    hash: u64,
}

// ---------------------------------------------------------------------- hashing internals

/// FNV-1a accumulator used to hash node kinds and attribute values deterministically
/// (no per-process random state, unlike `DefaultHasher` keys obtained via `RandomState`).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// One splitmix64-style mixing step; order-sensitive, so sibling order matters.
fn mix(acc: u64, v: u64) -> u64 {
    let mut x = acc
        .rotate_left(5)
        .wrapping_add(v)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// Domain separator baked in at compile time (str_hash64 is `const`).
const NODE_HASH_SEED: u64 = str_hash64("pi-ast.node");

/// Computes a subtree hash from a node's label and its children's *cached* hashes — O(arity),
/// not O(subtree).
fn label_and_children_hash(kind: &NodeKind, attrs: &[(Sym, AttrValue)], children: &[Node]) -> u64 {
    let mut h = mix(NODE_HASH_SEED, hash_of(kind));
    h = mix(h, attrs.len() as u64);
    for (key, value) in attrs {
        h = mix(h, key.hash64());
        h = mix(h, hash_of(value));
    }
    h = mix(h, children.len() as u64);
    for child in children {
        h = mix(h, child.hash);
    }
    h
}

impl Node {
    /// Creates a node of the given kind with no attributes and no children.
    pub fn new(kind: NodeKind) -> Self {
        let hash = label_and_children_hash(&kind, &[], &[]);
        Node {
            kind,
            attrs: Vec::new(),
            children: Vec::new(),
            hash,
        }
    }

    /// Restores the hash invariant for this node after a local change (attributes or direct
    /// children).  Children must already satisfy the invariant.
    fn refresh_hash(&mut self) {
        self.hash = label_and_children_hash(&self.kind, &self.attrs, &self.children);
    }

    // ------------------------------------------------------------------ constructors

    /// A column reference node.
    pub fn column(name: &str) -> Self {
        Node::new(NodeKind::ColExpr).with_attr("name", name)
    }

    /// A column reference qualified by a table name (`t.col`).
    pub fn qualified_column(table: &str, name: &str) -> Self {
        Node::new(NodeKind::ColExpr)
            .with_attr("name", name)
            .with_attr("table", table)
    }

    /// A string literal node.
    pub fn string(value: &str) -> Self {
        Node::new(NodeKind::StrExpr).with_attr("value", value)
    }

    /// An integer literal node.
    pub fn int(value: i64) -> Self {
        Node::new(NodeKind::NumExpr).with_attr("value", AttrValue::Int(value))
    }

    /// A floating point literal node.
    pub fn float(value: f64) -> Self {
        Node::new(NodeKind::NumExpr).with_attr("value", AttrValue::Float(value))
    }

    /// A hexadecimal literal node (`0x400`), as found throughout the SDSS log.
    pub fn hex(value: i64) -> Self {
        Node::new(NodeKind::HexExpr).with_attr("value", AttrValue::Int(value))
    }

    /// A base table reference.
    pub fn table(name: &str) -> Self {
        Node::new(NodeKind::TableRef).with_attr("name", name)
    }

    /// The `*` projection.
    pub fn star() -> Self {
        Node::new(NodeKind::Star)
    }

    // ------------------------------------------------------------------ builder-style setters

    /// Adds an attribute (builder style).
    pub fn with_attr<V: Into<AttrValue>>(mut self, key: &str, value: V) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Adds a child (builder style).
    pub fn with_child(mut self, child: Node) -> Self {
        self.push_child(child);
        self
    }

    /// Adds several children (builder style).
    pub fn with_children<I: IntoIterator<Item = Node>>(mut self, children: I) -> Self {
        self.children.extend(children);
        self.refresh_hash();
        self
    }

    /// Sets (or overwrites) an attribute.
    pub fn set_attr<V: Into<AttrValue>>(&mut self, key: &str, value: V) {
        let key = Sym::intern(key);
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
        self.refresh_hash();
    }

    /// Appends a child.
    pub fn push_child(&mut self, child: Node) {
        self.children.push(child);
        self.refresh_hash();
    }

    // ------------------------------------------------------------------ accessors

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind.clone()
    }

    /// A reference to the node kind (no clone).
    pub fn kind_ref(&self) -> &NodeKind {
        &self.kind
    }

    /// The attribute/value pairs, in insertion order, with interned keys.
    pub fn attrs(&self) -> &[(Sym, AttrValue)] {
        &self.attrs
    }

    /// Looks up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        // `lookup` (not `intern`) so probing with never-seen keys doesn't grow the table.
        let key = Sym::lookup(key)?;
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Looks up a string attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(AttrValue::as_str)
    }

    /// Looks up a numeric attribute by key (ints are widened to `f64`).
    pub fn attr_num(&self, key: &str) -> Option<f64> {
        self.attr(key).and_then(AttrValue::as_num)
    }

    /// The ordered children.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Number of direct children.
    pub fn arity(&self) -> usize {
        self.children.len()
    }

    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    // ------------------------------------------------------------------ tree metrics

    /// Total number of nodes in the subtree rooted here.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Node::size).sum::<usize>()
    }

    /// Height of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Node::depth).max().unwrap_or(0)
    }

    /// Number of leaves in the subtree.
    pub fn leaf_count(&self) -> usize {
        if self.children.is_empty() {
            1
        } else {
            self.children.iter().map(Node::leaf_count).sum()
        }
    }

    // ------------------------------------------------------------------ identity & typing

    /// Structural hash of the subtree; equal trees hash equally.
    ///
    /// O(1): the hash is memoized at construction and maintained by every mutator.
    #[inline]
    pub fn structural_hash(&self) -> u64 {
        self.hash
    }

    /// The structural identity of the subtree (O(1), backed by the memoized hash).
    #[inline]
    pub fn id(&self) -> NodeId {
        NodeId(self.hash)
    }

    /// True when two subtrees are structurally identical, decided by the memoized hash alone.
    ///
    /// This is the O(1) comparison the aligner uses to skip equal subtrees; a 64-bit
    /// collision would merge two distinct subtrees, which the paper's purely syntactic
    /// pipeline tolerates (the same assumption underlies its hash-anchored LCS).
    #[inline]
    pub fn same_tree(&self, other: &Node) -> bool {
        self.hash == other.hash
    }

    /// Recomputes the structural hash from scratch, ignoring the memo (O(subtree)).
    ///
    /// Exists so tests and debug assertions can validate the memo invariant; production code
    /// should always use [`Node::structural_hash`].
    pub fn recomputed_hash(&self) -> u64 {
        let mut h = mix(NODE_HASH_SEED, hash_of(&self.kind));
        h = mix(h, self.attrs.len() as u64);
        for (key, value) in &self.attrs {
            h = mix(h, key.hash64());
            h = mix(h, hash_of(value));
        }
        h = mix(h, self.children.len() as u64);
        for child in &self.children {
            h = mix(h, child.recomputed_hash());
        }
        h
    }

    /// True when two nodes agree on kind and attributes (children are ignored).
    pub fn same_label(&self, other: &Node) -> bool {
        self.kind == other.kind && self.attrs == other.attrs
    }

    /// The primitive type of this subtree as seen by widget rules.
    ///
    /// Terminal literal kinds use the grammar annotation; anything with children, or any
    /// non-annotated kind, is a `tree`.
    pub fn primitive_type(&self) -> PrimitiveType {
        if self.children.is_empty() {
            self.kind.terminal_type().unwrap_or(PrimitiveType::Tree)
        } else {
            PrimitiveType::Tree
        }
    }

    /// For numeric terminals, the numeric value (used for slider range extrapolation).
    pub fn numeric_value(&self) -> Option<f64> {
        if self.primitive_type() == PrimitiveType::Num {
            self.attr_num("value")
        } else {
            None
        }
    }

    /// A short human-readable label for this subtree, used in widget option lists.
    pub fn label(&self) -> String {
        match &self.kind {
            NodeKind::ColExpr => {
                let name = self.attr_str("name").unwrap_or("?");
                match self.attr_str("table") {
                    Some(t) => format!("{t}.{name}"),
                    None => name.to_string(),
                }
            }
            NodeKind::StrExpr | NodeKind::BoolExpr => {
                self.attr_str("value").unwrap_or("?").to_string()
            }
            NodeKind::NumExpr => self
                .attr("value")
                .map(|v| v.render())
                .unwrap_or_else(|| "?".into()),
            NodeKind::HexExpr => self
                .attr("value")
                .and_then(AttrValue::as_int)
                .map(|v| format!("0x{v:x}"))
                .unwrap_or_else(|| "?".into()),
            NodeKind::TableRef => self.attr_str("name").unwrap_or("?").to_string(),
            NodeKind::Star => "*".to_string(),
            NodeKind::Null => "NULL".to_string(),
            NodeKind::FuncName => self.attr_str("name").unwrap_or("?").to_string(),
            NodeKind::FuncCall | NodeKind::AggCall => {
                let name = self
                    .children
                    .first()
                    .filter(|c| c.kind == NodeKind::FuncName)
                    .and_then(|c| c.attr_str("name"))
                    .or_else(|| self.attr_str("name"))
                    .unwrap_or("?");
                format!("{name}(…)")
            }
            other => format!("{}[{}]", other.name(), self.size()),
        }
    }

    // ------------------------------------------------------------------ navigation & mutation

    /// The subtree at `path`, if it exists.
    pub fn get(&self, path: &Path) -> Option<&Node> {
        let mut cur = self;
        for &step in path.steps() {
            cur = cur.children.get(step)?;
        }
        Some(cur)
    }

    /// Replaces the subtree at `path` with `subtree`, in place.
    ///
    /// If `path` designates a position exactly one past the end of an existing node's child
    /// list, the subtree is *appended* there; this is how additions (diffs whose "before" side
    /// is null) are applied.
    pub fn replace_at(&mut self, path: &Path, subtree: Node) -> Result<(), ReplaceError> {
        self.replace_steps(path.steps(), subtree)
            .map_err(|_| ReplaceError::PathNotFound { path: path.clone() })
    }

    fn replace_steps(&mut self, steps: &[usize], subtree: Node) -> Result<(), ()> {
        match steps {
            [] => {
                *self = subtree;
                Ok(())
            }
            [idx, rest @ ..] => {
                if rest.is_empty() && *idx == self.children.len() {
                    self.children.push(subtree);
                } else {
                    self.children
                        .get_mut(*idx)
                        .ok_or(())?
                        .replace_steps(rest, subtree)?;
                }
                self.refresh_hash();
                Ok(())
            }
        }
    }

    /// Returns a copy of this tree with the subtree at `path` replaced by `subtree`.
    pub fn replaced(&self, path: &Path, subtree: Node) -> Result<Node, ReplaceError> {
        let mut out = self.clone();
        out.replace_at(path, subtree)?;
        Ok(out)
    }

    /// Inserts `subtree` so that it ends up *at* `path`, shifting later siblings right.
    /// A path pointing one slot past the end of the parent's child list appends.
    pub fn insert_at(&mut self, path: &Path, subtree: Node) -> Result<(), ReplaceError> {
        let Some(parent_path) = path.parent() else {
            // Inserting at the root is a whole-tree replacement.
            *self = subtree;
            return Ok(());
        };
        let idx = path.last().expect("non-root path has a last step");
        self.insert_steps(parent_path.steps(), idx, subtree)
            .map_err(|_| ReplaceError::PathNotFound { path: path.clone() })
    }

    fn insert_steps(&mut self, steps: &[usize], idx: usize, subtree: Node) -> Result<(), ()> {
        match steps {
            [] => {
                if idx > self.children.len() {
                    return Err(());
                }
                self.children.insert(idx, subtree);
                self.refresh_hash();
                Ok(())
            }
            [step, rest @ ..] => {
                self.children
                    .get_mut(*step)
                    .ok_or(())?
                    .insert_steps(rest, idx, subtree)?;
                self.refresh_hash();
                Ok(())
            }
        }
    }

    /// Returns a copy of this tree with `subtree` inserted at `path`.
    pub fn inserted(&self, path: &Path, subtree: Node) -> Result<Node, ReplaceError> {
        let mut out = self.clone();
        out.insert_at(path, subtree)?;
        Ok(out)
    }

    /// Removes the subtree at `path`, shifting later siblings left.  Used to apply deletions
    /// (diffs whose "after" side is null).
    pub fn remove_at(&mut self, path: &Path) -> Result<Node, ReplaceError> {
        if path.is_root() {
            return Err(ReplaceError::CannotRemoveRoot);
        }
        self.remove_steps(path.steps())
            .map_err(|_| ReplaceError::PathNotFound { path: path.clone() })
    }

    fn remove_steps(&mut self, steps: &[usize]) -> Result<Node, ()> {
        match steps {
            [] => unreachable!("remove_at rejects the root path"),
            [idx] => {
                if *idx >= self.children.len() {
                    return Err(());
                }
                let removed = self.children.remove(*idx);
                self.refresh_hash();
                Ok(removed)
            }
            [step, rest @ ..] => {
                let removed = self.children.get_mut(*step).ok_or(())?.remove_steps(rest)?;
                self.refresh_hash();
                Ok(removed)
            }
        }
    }

    /// Returns a copy of this tree with the subtree at `path` removed.
    pub fn removed(&self, path: &Path) -> Result<Node, ReplaceError> {
        let mut out = self.clone();
        out.remove_at(path)?;
        Ok(out)
    }

    // ------------------------------------------------------------------ traversal

    /// Pre-order traversal of `(path, node)` pairs, root first.
    pub fn preorder(&self) -> Vec<(Path, &Node)> {
        let mut out = Vec::with_capacity(self.size());
        self.preorder_into(Path::root(), &mut out);
        out
    }

    fn preorder_into<'a>(&'a self, path: Path, out: &mut Vec<(Path, &'a Node)>) {
        out.push((path.clone(), self));
        for (i, child) in self.children.iter().enumerate() {
            child.preorder_into(path.child(i), out);
        }
    }

    /// Paths of all nodes whose kind satisfies `pred`.
    pub fn find_paths<F: Fn(&Node) -> bool>(&self, pred: F) -> Vec<Path> {
        self.preorder()
            .into_iter()
            .filter(|(_, n)| pred(n))
            .map(|(p, _)| p)
            .collect()
    }

    /// Iterates over every node in the subtree (pre-order) without materialising paths.
    pub fn visit<F: FnMut(&Node)>(&self, f: &mut F) {
        f(self);
        for child in &self.children {
            child.visit(f);
        }
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        // The memoized hash filters out almost all unequal pairs in O(1); the structural
        // compare below keeps `Eq` sound in the (vanishingly unlikely) event of a collision.
        self.hash == other.hash
            && self.kind == other.kind
            && self.attrs == other.attrs
            && self.children == other.children
    }
}

impl Eq for Node {}

impl Hash for Node {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.name())?;
        if !self.attrs.is_empty() {
            write!(f, "(")?;
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Node {
        // SELECT sales, costs FROM t WHERE cty = 'USA'
        Node::new(NodeKind::Select)
            .with_child(
                Node::new(NodeKind::Project)
                    .with_child(Node::new(NodeKind::ProjClause).with_child(Node::column("sales")))
                    .with_child(Node::new(NodeKind::ProjClause).with_child(Node::column("costs"))),
            )
            .with_child(Node::new(NodeKind::From).with_child(Node::table("t")))
            .with_child(
                Node::new(NodeKind::Where).with_child(
                    Node::new(NodeKind::BiExpr)
                        .with_attr("op", "=")
                        .with_child(Node::column("cty"))
                        .with_child(Node::string("USA")),
                ),
            )
    }

    #[test]
    fn constructors_set_expected_attrs() {
        assert_eq!(Node::column("a").attr_str("name"), Some("a"));
        assert_eq!(Node::string("x").attr_str("value"), Some("x"));
        assert_eq!(Node::int(5).attr_num("value"), Some(5.0));
        assert_eq!(
            Node::hex(0x400).attr("value").unwrap().as_int(),
            Some(0x400)
        );
        assert_eq!(Node::table("t").attr_str("name"), Some("t"));
    }

    #[test]
    fn get_follows_paths_like_the_paper() {
        let t = sample_tree();
        // 0/1/0 is the second projection clause's column (paper Table 1, d1).
        let p: Path = "0/1/0".parse().unwrap();
        let n = t.get(&p).unwrap();
        assert_eq!(n.kind(), NodeKind::ColExpr);
        assert_eq!(n.attr_str("name"), Some("costs"));
        // 2/0/1 is the string literal in the predicate (paper Table 1, d2 uses 2/0/0/1 with an
        // extra level; our WHERE has one fewer wrapper).
        let p2: Path = "2/0/1".parse().unwrap();
        assert_eq!(t.get(&p2).unwrap().attr_str("value"), Some("USA"));
        assert!(t.get(&"9/9".parse().unwrap()).is_none());
    }

    #[test]
    fn replace_at_swaps_subtrees() {
        let t = sample_tree();
        let p: Path = "2/0/1".parse().unwrap();
        let t2 = t.replaced(&p, Node::string("EUR")).unwrap();
        assert_eq!(t2.get(&p).unwrap().attr_str("value"), Some("EUR"));
        // original untouched
        assert_eq!(t.get(&p).unwrap().attr_str("value"), Some("USA"));
        // replacing the root swaps the whole query
        let swapped = t.replaced(&Path::root(), Node::star()).unwrap();
        assert_eq!(swapped.kind(), NodeKind::Star);
    }

    #[test]
    fn replace_at_appends_when_index_is_one_past_end() {
        let mut t = sample_tree();
        // Append a GROUP BY clause as the 4th child of the root.
        let p: Path = "3".parse().unwrap();
        t.replace_at(&p, Node::new(NodeKind::GroupBy)).unwrap();
        assert_eq!(t.arity(), 4);
        // Far past the end is an error.
        let err = t.replace_at(&"9".parse().unwrap(), Node::star());
        assert!(err.is_err());
    }

    #[test]
    fn remove_at_deletes_and_shifts() {
        let mut t = sample_tree();
        let removed = t.remove_at(&"0/0".parse().unwrap()).unwrap();
        assert_eq!(removed.kind(), NodeKind::ProjClause);
        // The remaining projection clause shifted into slot 0.
        assert_eq!(
            t.get(&"0/0/0".parse().unwrap()).unwrap().attr_str("name"),
            Some("costs")
        );
        assert!(t.remove_at(&Path::root()).is_err());
        assert!(t.remove_at(&"0/7".parse().unwrap()).is_err());
    }

    #[test]
    fn insert_at_shifts_right_and_appends() {
        let mut t = sample_tree();
        t.insert_at(
            &"0/1".parse().unwrap(),
            Node::new(NodeKind::ProjClause).with_child(Node::column("day")),
        )
        .unwrap();
        assert_eq!(t.get(&"0".parse().unwrap()).unwrap().arity(), 3);
        assert_eq!(
            t.get(&"0/1/0".parse().unwrap()).unwrap().attr_str("name"),
            Some("day")
        );
        assert_eq!(
            t.get(&"0/2/0".parse().unwrap()).unwrap().attr_str("name"),
            Some("costs")
        );
        assert_eq!(t.hash, t.recomputed_hash());
        // Appending one past the end works; beyond is an error.
        assert!(t.insert_at(&"3".parse().unwrap(), Node::star()).is_ok());
        assert!(t.insert_at(&"9".parse().unwrap(), Node::star()).is_err());
        // An inserted() copy leaves the original alone.
        let t2 = t.inserted(&"0/0".parse().unwrap(), Node::star()).unwrap();
        assert_eq!(t2.get(&"0".parse().unwrap()).unwrap().arity(), 4);
        assert_eq!(t.get(&"0".parse().unwrap()).unwrap().arity(), 3);
    }

    #[test]
    fn metrics_and_traversal_agree() {
        let t = sample_tree();
        let pre = t.preorder();
        assert_eq!(pre.len(), t.size());
        assert_eq!(pre[0].0, Path::root());
        // Each (path, node) pair is consistent with get().
        for (p, n) in &pre {
            assert!(std::ptr::eq(t.get(p).unwrap(), *n));
        }
        assert!(t.depth() >= 4);
        assert!(t.leaf_count() >= 4);
    }

    #[test]
    fn structural_hash_tracks_equality() {
        let a = sample_tree();
        let b = sample_tree();
        assert_eq!(a, b);
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_eq!(a.id(), b.id());
        assert!(a.same_tree(&b));
        let c = a
            .replaced(&"2/0/1".parse().unwrap(), Node::string("EUR"))
            .unwrap();
        assert_ne!(a, c);
        assert_ne!(a.structural_hash(), c.structural_hash());
        assert!(!a.same_tree(&c));
    }

    #[test]
    fn memoized_hash_survives_every_mutator() {
        // The memo must equal a from-scratch recompute after arbitrary mutation sequences.
        let mut t = sample_tree();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.replace_at(&"2/0/1".parse().unwrap(), Node::string("EUR"))
            .unwrap();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.remove_at(&"0/0".parse().unwrap()).unwrap();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.insert_at(&"0/0".parse().unwrap(), Node::new(NodeKind::ProjClause))
            .unwrap();
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.set_attr("distinct", true);
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        t.push_child(Node::new(NodeKind::Limit).with_child(Node::int(5)));
        assert_eq!(t.structural_hash(), t.recomputed_hash());

        // Mutated copies and their sources both stay consistent.
        let copy = t
            .replaced(&"1/0".parse().unwrap(), Node::table("u"))
            .unwrap();
        assert_eq!(copy.structural_hash(), copy.recomputed_hash());
        assert_eq!(t.structural_hash(), t.recomputed_hash());
    }

    #[test]
    fn primitive_types_follow_annotations() {
        assert_eq!(Node::string("x").primitive_type(), PrimitiveType::Str);
        assert_eq!(Node::int(5).primitive_type(), PrimitiveType::Num);
        assert_eq!(Node::hex(16).primitive_type(), PrimitiveType::Num);
        assert_eq!(Node::column("c").primitive_type(), PrimitiveType::Str);
        assert_eq!(sample_tree().primitive_type(), PrimitiveType::Tree);
        // A column expression *with* children would be a tree.
        let weird = Node::column("c").with_child(Node::int(1));
        assert_eq!(weird.primitive_type(), PrimitiveType::Tree);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(Node::column("a").label(), "a");
        assert_eq!(Node::qualified_column("g", "objID").label(), "g.objID");
        assert_eq!(Node::string("USA").label(), "USA");
        assert_eq!(Node::int(42).label(), "42");
        assert_eq!(Node::hex(0x400).label(), "0x400");
        assert_eq!(Node::star().label(), "*");
    }

    #[test]
    fn set_attr_overwrites() {
        let mut n = Node::column("a");
        n.set_attr("name", "b");
        assert_eq!(n.attr_str("name"), Some("b"));
        assert_eq!(n.attrs().len(), 1);
        assert_eq!(n.structural_hash(), n.recomputed_hash());
    }

    #[test]
    fn numeric_value_only_for_numeric_terminals() {
        assert_eq!(Node::int(7).numeric_value(), Some(7.0));
        assert_eq!(Node::float(2.5).numeric_value(), Some(2.5));
        assert_eq!(Node::hex(0x10).numeric_value(), Some(16.0));
        assert_eq!(Node::string("7").numeric_value(), None);
        assert_eq!(sample_tree().numeric_value(), None);
    }

    #[test]
    fn attr_probe_with_unknown_key_is_none() {
        // attr() must not intern unseen keys; either way it reports absence.
        let n = Node::column("a");
        assert_eq!(n.attr("this_key_is_never_set_anywhere"), None);
        assert_eq!(n.attr_str("another_never_set_key"), None);
    }
}
