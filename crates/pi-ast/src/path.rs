//! Paths locate subtrees within a query AST.
//!
//! The paper writes paths as slash-separated child indices: `0/1/0` follows the first child of
//! the root, then its second child, then its first child (Table 1, Example 4.2).  The widget
//! mapping heuristic relies heavily on the *prefix* relation between paths — an ancestor widget
//! has a path that is a prefix of its descendants' paths — so [`Path`] provides cheap prefix
//! tests in addition to parsing/printing.

use std::fmt;
use std::str::FromStr;

/// The location of a subtree inside an AST: a sequence of 0-based child indices from the root.
///
/// The empty path designates the root node itself.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path(Vec<usize>);

/// Error produced when parsing a textual path fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    /// The offending path segment.
    pub segment: String,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path segment `{}`", self.segment)
    }
}

impl std::error::Error for ParsePathError {}

impl Path {
    /// The root path (empty sequence of steps).
    pub fn root() -> Self {
        Path(Vec::new())
    }

    /// Builds a path from explicit steps.
    pub fn from_steps<I: IntoIterator<Item = usize>>(steps: I) -> Self {
        Path(steps.into_iter().collect())
    }

    /// The steps of the path, outermost first.
    pub fn steps(&self) -> &[usize] {
        &self.0
    }

    /// Number of steps; the root has depth 0.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// True when this is the root path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a new path with `child` appended.
    pub fn child(&self, child: usize) -> Path {
        let mut steps = self.0.clone();
        steps.push(child);
        Path(steps)
    }

    /// Appends a step in place.
    pub fn push(&mut self, child: usize) {
        self.0.push(child);
    }

    /// Removes and returns the last step.
    pub fn pop(&mut self) -> Option<usize> {
        self.0.pop()
    }

    /// The parent path, or `None` if this is the root.
    pub fn parent(&self) -> Option<Path> {
        if self.0.is_empty() {
            None
        } else {
            Some(Path(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The last step of the path (the index of this subtree within its parent).
    pub fn last(&self) -> Option<usize> {
        self.0.last().copied()
    }

    /// True when `self` is a (non-strict) prefix of `other`, i.e. `self` is an ancestor-or-self
    /// location of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// True when `self` is a strict prefix of `other`.
    pub fn is_strict_prefix_of(&self, other: &Path) -> bool {
        other.0.len() > self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The longest common prefix of two paths (their least common ancestor location).
    pub fn common_prefix(&self, other: &Path) -> Path {
        let n = self
            .0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Path(self.0[..n].to_vec())
    }

    /// The suffix of `other` relative to `self`, if `self` is a prefix of `other`.
    pub fn relative_to(&self, ancestor: &Path) -> Option<Path> {
        if ancestor.is_prefix_of(self) {
            Some(Path(self.0[ancestor.0.len()..].to_vec()))
        } else {
            None
        }
    }

    /// Concatenates two paths.
    pub fn join(&self, suffix: &Path) -> Path {
        let mut steps = self.0.clone();
        steps.extend_from_slice(&suffix.0);
        Path(steps)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("/");
        }
        let mut first = true;
        for step in &self.0 {
            if !first {
                f.write_str("/")?;
            }
            write!(f, "{step}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "/" {
            return Ok(Path::root());
        }
        let mut steps = Vec::new();
        for seg in s.trim_matches('/').split('/') {
            let idx: usize = seg.parse().map_err(|_| ParsePathError {
                segment: seg.to_string(),
            })?;
            steps.push(idx);
        }
        Ok(Path(steps))
    }
}

impl From<Vec<usize>> for Path {
    fn from(steps: Vec<usize>) -> Self {
        Path(steps)
    }
}

impl From<&[usize]> for Path {
    fn from(steps: &[usize]) -> Self {
        Path(steps.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for text in ["0/1/0", "2/0/0/1", "0", "7/3"] {
            let p: Path = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
        }
        let root: Path = "/".parse().unwrap();
        assert!(root.is_root());
        assert_eq!(root.to_string(), "/");
        let empty: Path = "".parse().unwrap();
        assert!(empty.is_root());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("0/x/1".parse::<Path>().is_err());
        assert!("a".parse::<Path>().is_err());
    }

    #[test]
    fn prefix_relations() {
        let a: Path = "0/1".parse().unwrap();
        let b: Path = "0/1/0".parse().unwrap();
        let c: Path = "0/2".parse().unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
        assert!(a.is_strict_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(!a.is_prefix_of(&c));
        assert!(Path::root().is_prefix_of(&c));
    }

    #[test]
    fn parent_child_navigation() {
        let p: Path = "0/1/2".parse().unwrap();
        assert_eq!(p.parent().unwrap().to_string(), "0/1");
        assert_eq!(p.last(), Some(2));
        assert_eq!(p.depth(), 3);
        assert_eq!(Path::root().parent(), None);
        assert_eq!(Path::root().child(4).to_string(), "4");
    }

    #[test]
    fn common_prefix_is_lca_location() {
        let a: Path = "0/1/0".parse().unwrap();
        let b: Path = "0/1/3/2".parse().unwrap();
        let c: Path = "2/0".parse().unwrap();
        assert_eq!(a.common_prefix(&b).to_string(), "0/1");
        assert_eq!(a.common_prefix(&c), Path::root());
        assert_eq!(a.common_prefix(&a), a);
    }

    #[test]
    fn relative_and_join_are_inverses() {
        let anc: Path = "0/1".parse().unwrap();
        let full: Path = "0/1/3/2".parse().unwrap();
        let rel = full.relative_to(&anc).unwrap();
        assert_eq!(rel.to_string(), "3/2");
        assert_eq!(anc.join(&rel), full);
        assert_eq!(full.relative_to(&"4".parse().unwrap()), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: Path = "0/1".parse().unwrap();
        let b: Path = "0/1/0".parse().unwrap();
        let c: Path = "1".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
