//! Paths locate subtrees within a query AST.
//!
//! The paper writes paths as slash-separated child indices: `0/1/0` follows the first child of
//! the root, then its second child, then its first child (Table 1, Example 4.2).  The widget
//! mapping heuristic relies heavily on the *prefix* relation between paths — an ancestor widget
//! has a path that is a prefix of its descendants' paths — so [`Path`] provides cheap prefix
//! tests in addition to parsing/printing.

use std::fmt;
use std::str::FromStr;

/// Steps a path can hold without touching the heap.  Real query paths are short — the
/// deepest location in a typical SELECT is 5–7 steps — so almost every path the pipeline
/// makes (traversal, alignment, diff records, widgets) stays inline: `clone()` is a memcpy,
/// `child()` never allocates.  Deeper paths (nested subquery towers) spill to a `Vec`.
const INLINE_STEPS: usize = 8;

/// The storage behind a [`Path`]: inline up to [`INLINE_STEPS`] steps, heap beyond.
///
/// The representation is *not* canonical — a long path popped back under the inline limit
/// stays heap-allocated — so all comparisons and hashing go through [`Path::steps`], never
/// the representation.
#[derive(Debug, Clone)]
enum PathRep {
    /// `(length, steps)`; only the first `length` entries are meaningful.
    Inline(u8, [usize; INLINE_STEPS]),
    Heap(Vec<usize>),
}

/// The location of a subtree inside an AST: a sequence of 0-based child indices from the root.
///
/// The empty path designates the root node itself.
#[derive(Debug, Clone)]
pub struct Path(PathRep);

impl Default for Path {
    fn default() -> Self {
        Path::root()
    }
}

impl PartialEq for Path {
    fn eq(&self, other: &Self) -> bool {
        self.steps() == other.steps()
    }
}

impl Eq for Path {}

impl std::hash::Hash for Path {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Matches the old derive over `Vec<usize>`: a slice hash of the steps.
        self.steps().hash(state);
    }
}

impl PartialOrd for Path {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Path {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic over steps, exactly the old derived `Vec` ordering.
        self.steps().cmp(other.steps())
    }
}

/// Error produced when parsing a textual path fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    /// The offending path segment.
    pub segment: String,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path segment `{}`", self.segment)
    }
}

impl std::error::Error for ParsePathError {}

impl Path {
    /// The root path (empty sequence of steps).
    pub fn root() -> Self {
        Path(PathRep::Inline(0, [0; INLINE_STEPS]))
    }

    /// Builds a path from a slice of steps, inline when it fits.
    fn from_slice(steps: &[usize]) -> Self {
        if steps.len() <= INLINE_STEPS {
            let mut inline = [0; INLINE_STEPS];
            inline[..steps.len()].copy_from_slice(steps);
            Path(PathRep::Inline(steps.len() as u8, inline))
        } else {
            Path(PathRep::Heap(steps.to_vec()))
        }
    }

    /// Builds a path from explicit steps.
    pub fn from_steps<I: IntoIterator<Item = usize>>(steps: I) -> Self {
        let mut path = Path::root();
        for step in steps {
            path.push(step);
        }
        path
    }

    /// The steps of the path, outermost first.
    pub fn steps(&self) -> &[usize] {
        match &self.0 {
            PathRep::Inline(len, steps) => &steps[..*len as usize],
            PathRep::Heap(steps) => steps,
        }
    }

    /// Number of steps; the root has depth 0.
    pub fn depth(&self) -> usize {
        match &self.0 {
            PathRep::Inline(len, _) => *len as usize,
            PathRep::Heap(steps) => steps.len(),
        }
    }

    /// True when this is the root path.
    pub fn is_root(&self) -> bool {
        self.depth() == 0
    }

    /// Returns a new path with `child` appended.
    pub fn child(&self, child: usize) -> Path {
        let mut out = self.clone();
        out.push(child);
        out
    }

    /// Appends a step in place.
    pub fn push(&mut self, child: usize) {
        match &mut self.0 {
            PathRep::Inline(len, steps) => {
                if (*len as usize) < INLINE_STEPS {
                    steps[*len as usize] = child;
                    *len += 1;
                } else {
                    // Spill to the heap: the inline capacity is a fast path, not a limit.
                    let mut spilled = steps.to_vec();
                    spilled.push(child);
                    self.0 = PathRep::Heap(spilled);
                }
            }
            PathRep::Heap(steps) => steps.push(child),
        }
    }

    /// Removes and returns the last step.
    pub fn pop(&mut self) -> Option<usize> {
        match &mut self.0 {
            PathRep::Inline(len, steps) => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(steps[*len as usize])
                }
            }
            PathRep::Heap(steps) => steps.pop(),
        }
    }

    /// The parent path, or `None` if this is the root.
    pub fn parent(&self) -> Option<Path> {
        let steps = self.steps();
        if steps.is_empty() {
            None
        } else {
            Some(Path::from_slice(&steps[..steps.len() - 1]))
        }
    }

    /// The last step of the path (the index of this subtree within its parent).
    pub fn last(&self) -> Option<usize> {
        self.steps().last().copied()
    }

    /// True when `self` is a (non-strict) prefix of `other`, i.e. `self` is an ancestor-or-self
    /// location of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        let (a, b) = (self.steps(), other.steps());
        b.len() >= a.len() && b[..a.len()] == *a
    }

    /// True when `self` is a strict prefix of `other`.
    pub fn is_strict_prefix_of(&self, other: &Path) -> bool {
        let (a, b) = (self.steps(), other.steps());
        b.len() > a.len() && b[..a.len()] == *a
    }

    /// The longest common prefix of two paths (their least common ancestor location).
    pub fn common_prefix(&self, other: &Path) -> Path {
        let (a, b) = (self.steps(), other.steps());
        let n = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        Path::from_slice(&a[..n])
    }

    /// The suffix of `other` relative to `self`, if `self` is a prefix of `other`.
    pub fn relative_to(&self, ancestor: &Path) -> Option<Path> {
        if ancestor.is_prefix_of(self) {
            Some(Path::from_slice(&self.steps()[ancestor.depth()..]))
        } else {
            None
        }
    }

    /// Concatenates two paths.
    pub fn join(&self, suffix: &Path) -> Path {
        let mut out = self.clone();
        for &step in suffix.steps() {
            out.push(step);
        }
        out
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let steps = self.steps();
        if steps.is_empty() {
            return f.write_str("/");
        }
        let mut first = true;
        for step in steps {
            if !first {
                f.write_str("/")?;
            }
            write!(f, "{step}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "/" {
            return Ok(Path::root());
        }
        let mut path = Path::root();
        for seg in s.trim_matches('/').split('/') {
            let idx: usize = seg.parse().map_err(|_| ParsePathError {
                segment: seg.to_string(),
            })?;
            path.push(idx);
        }
        Ok(path)
    }
}

impl From<Vec<usize>> for Path {
    fn from(steps: Vec<usize>) -> Self {
        if steps.len() > INLINE_STEPS {
            // Deep path: move the caller's allocation straight in instead of re-copying.
            Path(PathRep::Heap(steps))
        } else {
            Path::from_slice(&steps)
        }
    }
}

impl From<&[usize]> for Path {
    fn from(steps: &[usize]) -> Self {
        Path::from_slice(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for text in ["0/1/0", "2/0/0/1", "0", "7/3"] {
            let p: Path = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
        }
        let root: Path = "/".parse().unwrap();
        assert!(root.is_root());
        assert_eq!(root.to_string(), "/");
        let empty: Path = "".parse().unwrap();
        assert!(empty.is_root());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("0/x/1".parse::<Path>().is_err());
        assert!("a".parse::<Path>().is_err());
    }

    #[test]
    fn prefix_relations() {
        let a: Path = "0/1".parse().unwrap();
        let b: Path = "0/1/0".parse().unwrap();
        let c: Path = "0/2".parse().unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
        assert!(a.is_strict_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(!a.is_prefix_of(&c));
        assert!(Path::root().is_prefix_of(&c));
    }

    #[test]
    fn parent_child_navigation() {
        let p: Path = "0/1/2".parse().unwrap();
        assert_eq!(p.parent().unwrap().to_string(), "0/1");
        assert_eq!(p.last(), Some(2));
        assert_eq!(p.depth(), 3);
        assert_eq!(Path::root().parent(), None);
        assert_eq!(Path::root().child(4).to_string(), "4");
    }

    #[test]
    fn common_prefix_is_lca_location() {
        let a: Path = "0/1/0".parse().unwrap();
        let b: Path = "0/1/3/2".parse().unwrap();
        let c: Path = "2/0".parse().unwrap();
        assert_eq!(a.common_prefix(&b).to_string(), "0/1");
        assert_eq!(a.common_prefix(&c), Path::root());
        assert_eq!(a.common_prefix(&a), a);
    }

    #[test]
    fn relative_and_join_are_inverses() {
        let anc: Path = "0/1".parse().unwrap();
        let full: Path = "0/1/3/2".parse().unwrap();
        let rel = full.relative_to(&anc).unwrap();
        assert_eq!(rel.to_string(), "3/2");
        assert_eq!(anc.join(&rel), full);
        assert_eq!(full.relative_to(&"4".parse().unwrap()), None);
    }

    #[test]
    fn deep_paths_spill_to_the_heap_and_stay_equal_to_inline_construction() {
        // Grow one step past the inline capacity and back: every operation must behave
        // identically to a from-scratch path with the same steps, whatever representation
        // each side happens to be in.
        let steps: Vec<usize> = (0..INLINE_STEPS + 3).collect();
        let mut grown = Path::root();
        for &s in &steps {
            grown.push(s);
        }
        let built = Path::from_steps(steps.iter().copied());
        assert_eq!(grown, built);
        assert_eq!(grown.depth(), INLINE_STEPS + 3);
        assert_eq!(grown.steps(), &steps[..]);
        // Pop back under the inline limit: the (now heap) path must still compare, hash
        // and order like an inline path with the same steps.
        for _ in 0..4 {
            grown.pop();
        }
        let inline = Path::from_steps((0..INLINE_STEPS - 1) as std::ops::Range<usize>);
        assert_eq!(grown, inline);
        assert_eq!(grown.cmp(&inline), std::cmp::Ordering::Equal);
        let hash = |p: &Path| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&grown), hash(&inline));
        assert_eq!(grown.to_string(), inline.to_string());
        // Deep paths round-trip through text and navigation too.
        let deep: Path = "0/1/2/3/4/5/6/7/8/9/10".parse().unwrap();
        assert_eq!(deep.depth(), 11);
        assert_eq!(deep.to_string(), "0/1/2/3/4/5/6/7/8/9/10");
        assert_eq!(deep.parent().unwrap().depth(), 10);
        assert_eq!(deep.child(11).last(), Some(11));
        assert!(deep.parent().unwrap().is_strict_prefix_of(&deep));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: Path = "0/1".parse().unwrap();
        let b: Path = "0/1/0".parse().unwrap();
        let c: Path = "1".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
