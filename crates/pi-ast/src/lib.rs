//! # pi-ast — query abstract syntax trees for Precision Interfaces
//!
//! Precision Interfaces (Zhang et al., SIGMOD 2019) performs *syntactic* analysis of a query
//! log: every query is parsed into an abstract syntax tree (AST) and the system reasons purely
//! about subtree differences between those trees.  This crate defines the tree model shared by
//! the whole workspace:
//!
//! * [`Node`] — a tree node with a [`NodeKind`], a set of attribute/value pairs and an ordered
//!   list of children (paper §4.1, Figure 3),
//!   stored behind a shared handle with **copy-on-write subtrees**: `clone()` is a refcount
//!   bump, path mutators (`replace_at` / `insert_at` / `remove_at` and their `-ed` copying
//!   variants) un-share only the root→path spine via `Arc::make_mut`, and every untouched
//!   subtree stays physically shared between the old and new trees ([`Node::ptr_eq`] observes
//!   the sharing; the memoized structural hash stays sound under it),
//! * [`Path`] — the `0/1/0`-style location of a subtree inside a query AST (paper Table 1),
//! * [`PrimitiveType`] — the minimal type system (`str`, `num`, `tree`) used by widget rules to
//!   decide which widget types may express a set of subtrees (paper §4.3),
//! * grammar annotations: which node kinds are terminal literals, and which node kinds are
//!   *collections* of sub-expressions (e.g. the projection list), mirroring the "lightly
//!   annotated grammar" assumption of §4.1.
//!
//! The crate is deliberately independent of SQL: the [`frontend`] module defines the
//! [`Frontend`] trait (parse text → trees, render trees → text) plus a per-query
//! [`Dialect`] tag, and `pi-sql` (SQL) and `pi-frames` (a method-chain dataframe dialect)
//! both implement it against the same tree shapes — so structurally identical analyses
//! written in different languages produce identical trees and mine into one shared
//! interface, the multi-front-end design goal stated in the paper.
//!
//! ```
//! use pi_ast::{Node, NodeKind, Path};
//!
//! // SELECT cty FROM t  (hand-built; usually produced by pi-sql)
//! let query = Node::new(NodeKind::Select)
//!     .with_child(
//!         Node::new(NodeKind::Project)
//!             .with_child(Node::new(NodeKind::ProjClause).with_child(Node::column("cty"))),
//!     )
//!     .with_child(Node::new(NodeKind::From).with_child(Node::table("t")));
//!
//! let path: Path = "0/0/0".parse().unwrap();
//! assert_eq!(query.get(&path).unwrap().kind(), NodeKind::ColExpr);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod intern;
mod istr;
mod kind;
mod node;
mod path;
mod print;
mod value;

pub mod builder;
pub mod codec;
pub mod frontend;

pub use codec::CodecError;
pub use frontend::{Dialect, ErrorSample, Frontend, FrontendError, Frontends};
pub use intern::Sym;
pub use istr::{ArenaStats, IStr};
pub use kind::{CollectionKind, NodeKind, PrimitiveType};
pub use node::{Node, NodeId, ReplaceError};
pub use path::{ParsePathError, Path};
pub use print::{pretty, TreePrinter};
pub use value::AttrValue;

/// Result alias used by fallible tree operations in this crate.
pub type Result<T, E = ReplaceError> = std::result::Result<T, E>;
