//! The front-end abstraction: pluggable parsers/renderers over the shared tree model.
//!
//! The paper's pipeline is deliberately language-agnostic — it reasons about subtree
//! differences between trees, never about SQL — and names "any other front-end (SPARQL, a
//! dataframe API, …)" as a design goal.  This module is where that goal becomes an API:
//!
//! * [`Frontend`] — a query language front-end: parse text into [`Node`] trees and render
//!   trees back into text.  `pi-sql` implements it for SQL, `pi-frames` for a method-chain
//!   dataframe dialect; both target the *same* tree shapes, so structurally identical
//!   analyses written in different languages mine into one shared interface.
//! * [`Dialect`] — a lightweight identifier carried per query, so a mixed log remembers
//!   which front-end each query arrived through and the UI can render every closure query
//!   in its originating language.
//! * [`Frontends`] — a small registry of front-ends keyed by dialect, used by sessions to
//!   route `push_text` calls and by the HTML/JSON compiler to pick a renderer per subtree.
//!
//! Nothing outside a front-end crate should call a concrete parser/renderer directly; the
//! workspace-level isolation test (`tests/frontend_isolation.rs`) enforces this for
//! `pi-sql`.

use crate::node::Node;
use std::fmt;
use std::sync::Arc;

/// Identifies the query language a query was written in.
///
/// A `Dialect` is a cheap copyable tag (front-ends are code, so a `&'static str` name
/// suffices); equality is by name.  The well-known dialects of this workspace are
/// [`Dialect::SQL`] and [`Dialect::FRAMES`]; other front-ends can mint their own with
/// [`Dialect::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dialect(&'static str);

impl Dialect {
    /// The SQL dialect implemented by `pi-sql`.
    pub const SQL: Dialect = Dialect("sql");
    /// The method-chain dataframe dialect implemented by `pi-frames`.
    pub const FRAMES: Dialect = Dialect("frames");

    /// A dialect with the given name (for front-ends outside this workspace).
    pub const fn new(name: &'static str) -> Dialect {
        Dialect(name)
    }

    /// The dialect's name, as shown in UI specs and diagnostics.
    pub const fn name(self) -> &'static str {
        self.0
    }
}

/// The workspace's founding dialect: untagged queries (hand-built trees, legacy entry
/// points) default to SQL.
impl Default for Dialect {
    fn default() -> Self {
        Dialect::SQL
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.0)
    }
}

/// A parse failure reported by a front-end, normalised across languages.
///
/// Concrete front-ends keep their own rich error types; this is the lowest common
/// denominator the dialect-agnostic layers (sessions, pipelines) work with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// The dialect whose parser rejected the input.
    pub dialect: Dialect,
    /// A human-readable description of the failure.
    pub message: String,
}

impl FrontendError {
    /// Creates an error for the given dialect.
    pub fn new(dialect: Dialect, message: impl Into<String>) -> Self {
        FrontendError {
            dialect,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} parse error: {}", self.dialect, self.message)
    }
}

impl std::error::Error for FrontendError {}

/// A bounded sample of recent parse failures, for skip-and-count streaming ingestion.
///
/// Streaming a million-query trace with a few percent of garbage lines must not allocate a
/// `FrontendError` (dialect + formatted message) per failure — at trace scale that is tens
/// of thousands of throwaway `String`s.  An `ErrorSample` keeps an exact *count* of every
/// failure but materialises only a capped window of them: it records every error until the
/// ring is full, then refreshes one slot per [`ErrorSample::THIN_EVERY`] further failures
/// (dropping the oldest), so the sample stays recent-ish while the steady-state allocation
/// rate is ~1/128th of the error rate.  [`ErrorSample::offer_with`] takes a closure so
/// callers can skip *formatting* the error entirely when it will not be recorded —
/// [`ErrorSample::would_record`] tells them in advance.
#[derive(Debug, Clone, Default)]
pub struct ErrorSample {
    cap: usize,
    seen: usize,
    entries: std::collections::VecDeque<FrontendError>,
}

impl ErrorSample {
    /// Default ring capacity used by sessions.
    pub const DEFAULT_CAPACITY: usize = 16;
    /// Once the ring is full, one further error in this many refreshes a slot.
    pub const THIN_EVERY: usize = 128;

    /// A sample retaining at most `cap` errors (0 disables retention; counting still works).
    pub fn new(cap: usize) -> Self {
        ErrorSample {
            cap,
            seen: 0,
            entries: std::collections::VecDeque::with_capacity(cap.min(64)),
        }
    }

    /// Rebuilds a sample from persisted parts: the ring capacity, the exact failure count
    /// and the retained window (oldest first, truncated to `cap`).  This is the snapshot
    /// codec's restore path — `seen` is preserved exactly even though most of the counted
    /// failures were never materialised.
    pub fn from_parts(cap: usize, seen: usize, entries: Vec<FrontendError>) -> Self {
        let mut ring: std::collections::VecDeque<FrontendError> = entries.into();
        while ring.len() > cap {
            ring.pop_front();
        }
        ErrorSample {
            cap,
            seen: seen.max(ring.len()),
            entries: ring,
        }
    }

    /// The ring capacity this sample was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total number of failures offered, recorded or not.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Number of failures currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no failure has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the *next* [`ErrorSample::offer_with`] will invoke its closure.  Callers
    /// on a hot path can test this first and hand in a pre-formatted error only when it
    /// will actually be kept.
    pub fn would_record(&self) -> bool {
        self.cap != 0 && (self.entries.len() < self.cap || (self.seen + 1) % Self::THIN_EVERY == 0)
    }

    /// Counts one failure, materialising it (via `make`) only if it will be retained.
    pub fn offer_with(&mut self, make: impl FnOnce() -> FrontendError) {
        let record = self.would_record();
        self.seen += 1;
        if record {
            if self.entries.len() == self.cap {
                self.entries.pop_front();
            }
            self.entries.push_back(make());
        }
    }

    /// The retained failures, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FrontendError> {
        self.entries.iter()
    }
}

/// A query language front-end: text ⇄ [`Node`] trees.
///
/// Implementations must target the shared tree shapes (same clause order, same node kinds,
/// same attribute names) so that structurally identical analyses written in different
/// dialects produce *identical* trees and therefore diff cleanly against each other —
/// that is what lets a mixed SQL + dataframe log mine into one interface.
///
/// `render` must be total (any tree renders to *something* readable, falling back to a
/// generic notation for constructs the language lacks); `parse` may be partial.  For trees
/// the front-end itself produced, `parse(render(t))` must be structurally identical to `t`
/// (property-tested per front-end in `tests/properties.rs`).
pub trait Frontend: fmt::Debug + Send + Sync {
    /// The dialect this front-end implements.
    fn dialect(&self) -> Dialect;

    /// Parses a fragment of text — one or more `;`-separated statements — into trees.
    /// All-or-nothing: the first malformed statement fails the whole fragment.
    fn parse(&self, text: &str) -> Result<Vec<Node>, FrontendError>;

    /// Per-statement results, for skip-and-count streaming ingestion: a malformed
    /// statement yields an `Err` entry without discarding its neighbours.
    ///
    /// The default delegates to [`Frontend::parse`] (all-or-nothing); front-ends with a
    /// statement splitter should override it.
    fn parse_statements(&self, text: &str) -> Vec<Result<Node, FrontendError>> {
        match self.parse(text) {
            Ok(nodes) => nodes.into_iter().map(Ok).collect(),
            Err(e) => vec![Err(e)],
        }
    }

    /// Skip-and-count streaming parse: appends each well-formed statement in `text` to
    /// `out`, counts every malformed one into `errors` (which retains only a bounded
    /// sample), and returns the number skipped.
    ///
    /// The default delegates to [`Frontend::parse_statements`], which already pays for a
    /// formatted [`FrontendError`] per failure; front-ends with a cheaper internal error
    /// type should override it and hand [`ErrorSample::offer_with`] a closure that formats
    /// on demand, so a garbage-heavy trace costs no per-failure allocation.
    fn parse_statements_lossy(
        &self,
        text: &str,
        out: &mut Vec<Node>,
        errors: &mut ErrorSample,
    ) -> usize {
        let mut skipped = 0;
        for result in self.parse_statements(text) {
            match result {
                Ok(node) => out.push(node),
                Err(e) => {
                    skipped += 1;
                    errors.offer_with(|| e);
                }
            }
        }
        skipped
    }

    /// Parses exactly one statement.
    ///
    /// Front-ends whose statement splitter is lexical (e.g. a naive `;` split) should
    /// override this with their single-statement parser, so queries whose *literals*
    /// contain the separator still parse (`… WHERE name = 'a;b'`).  The default delegates
    /// to [`Frontend::parse`].
    fn parse_one(&self, text: &str) -> Result<Node, FrontendError> {
        let mut nodes = self.parse(text)?;
        match (nodes.len(), nodes.pop()) {
            (1, Some(node)) => Ok(node),
            (0, _) => Err(FrontendError::new(
                self.dialect(),
                "expected one statement, found none",
            )),
            (n, _) => Err(FrontendError::new(
                self.dialect(),
                format!("expected one statement, found {n}"),
            )),
        }
    }

    /// Renders a tree back into this front-end's concrete syntax.
    fn render(&self, node: &Node) -> String;

    /// [`Frontend::render`] with all runs of whitespace collapsed (test assertions,
    /// compact display labels).
    fn render_compact(&self, node: &Node) -> String {
        self.render(node)
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A registry of front-ends keyed by [`Dialect`].
///
/// The first registered front-end is the *default*: it handles untagged text and serves as
/// the rendering fallback for dialects the registry does not know.  Registering a second
/// front-end for the same dialect replaces the first.
#[derive(Debug, Clone, Default)]
pub struct Frontends {
    entries: Vec<Arc<dyn Frontend>>,
}

impl Frontends {
    /// An empty registry.
    pub fn new() -> Self {
        Frontends::default()
    }

    /// Adds a front-end (builder style); see [`Frontends::register`].
    pub fn with(mut self, frontend: impl Frontend + 'static) -> Self {
        self.register(Arc::new(frontend));
        self
    }

    /// Registers a front-end, replacing any previous one for the same dialect (a
    /// replacement keeps the original's registration slot, so replacing the default
    /// front-end keeps it the default).
    pub fn register(&mut self, frontend: Arc<dyn Frontend>) {
        let dialect = frontend.dialect();
        match self.entries.iter_mut().find(|f| f.dialect() == dialect) {
            Some(slot) => *slot = frontend,
            None => self.entries.push(frontend),
        }
    }

    /// The front-end registered for a dialect.
    pub fn get(&self, dialect: Dialect) -> Option<&Arc<dyn Frontend>> {
        self.entries.iter().find(|f| f.dialect() == dialect)
    }

    /// The default front-end (the first registered), if any.
    pub fn default_frontend(&self) -> Option<&Arc<dyn Frontend>> {
        self.entries.first()
    }

    /// The default front-end's dialect, when the registry is non-empty.
    pub fn default_dialect(&self) -> Option<Dialect> {
        self.default_frontend().map(|f| f.dialect())
    }

    /// The registered dialects, in registration order.
    pub fn dialects(&self) -> Vec<Dialect> {
        self.entries.iter().map(|f| f.dialect()).collect()
    }

    /// Number of registered front-ends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no front-end is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders a tree in the given dialect, falling back to the default front-end when the
    /// dialect is unknown, and to the generic tree printer when the registry is empty.
    pub fn render(&self, dialect: Dialect, node: &Node) -> String {
        match self.get(dialect).or_else(|| self.default_frontend()) {
            Some(frontend) => frontend.render(node),
            None => crate::pretty(node).to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    /// A toy front-end: parses `leaf:<name>` lines, renders column nodes back.
    #[derive(Debug)]
    struct Toy(Dialect);

    impl Frontend for Toy {
        fn dialect(&self) -> Dialect {
            self.0
        }

        fn parse(&self, text: &str) -> Result<Vec<Node>, FrontendError> {
            text.split(';')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| match s.strip_prefix("leaf:") {
                    Some(name) => Ok(Node::column(name)),
                    None => Err(FrontendError::new(self.0, format!("bad statement `{s}`"))),
                })
                .collect()
        }

        fn render(&self, node: &Node) -> String {
            format!("leaf:{}", node.attr_str("name").unwrap_or("?"))
        }
    }

    #[test]
    fn dialect_identity_and_display() {
        assert_eq!(Dialect::SQL.name(), "sql");
        assert_eq!(Dialect::FRAMES.to_string(), "frames");
        assert_eq!(Dialect::default(), Dialect::SQL);
        assert_ne!(Dialect::SQL, Dialect::FRAMES);
        assert_eq!(Dialect::new("sql"), Dialect::SQL);
    }

    #[test]
    fn parse_one_and_parse_statements_defaults() {
        let toy = Toy(Dialect::new("toy"));
        assert_eq!(toy.parse_one("leaf:a").unwrap().attr_str("name"), Some("a"));
        assert!(toy.parse_one("").is_err());
        assert!(toy.parse_one("leaf:a; leaf:b").is_err());
        // The default parse_statements is all-or-nothing.
        let results = toy.parse_statements("leaf:a; nope");
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
        let ok = toy.parse_statements("leaf:a; leaf:b");
        assert_eq!(ok.len(), 2);
        assert!(ok.iter().all(Result::is_ok));
    }

    #[test]
    fn registry_routes_by_dialect_with_default_fallback() {
        let a = Dialect::new("a");
        let b = Dialect::new("b");
        let registry = Frontends::new().with(Toy(a)).with(Toy(b));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.default_dialect(), Some(a));
        assert_eq!(registry.dialects(), vec![a, b]);
        assert!(registry.get(b).is_some());
        assert!(registry.get(Dialect::new("c")).is_none());
        // Unknown dialects render through the default front-end.
        let node = Node::column("x");
        assert_eq!(registry.render(b, &node), "leaf:x");
        assert_eq!(registry.render(Dialect::new("c"), &node), "leaf:x");
        // An empty registry falls back to the generic printer.
        let printed = Frontends::new().render(a, &Node::new(NodeKind::Select));
        assert!(printed.contains("Select"));
    }

    #[test]
    fn registering_a_dialect_twice_replaces_in_place() {
        let a = Dialect::new("a");
        let mut registry = Frontends::new().with(Toy(a)).with(Toy(Dialect::new("b")));
        registry.register(Arc::new(Toy(a)));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.default_dialect(), Some(a));
    }

    #[test]
    fn render_compact_collapses_whitespace() {
        #[derive(Debug)]
        struct Spacey;
        impl Frontend for Spacey {
            fn dialect(&self) -> Dialect {
                Dialect::new("spacey")
            }
            fn parse(&self, _: &str) -> Result<Vec<Node>, FrontendError> {
                Ok(vec![])
            }
            fn render(&self, _: &Node) -> String {
                "a   b\n c".to_string()
            }
        }
        assert_eq!(Spacey.render_compact(&Node::star()), "a b c");
    }

    #[test]
    fn error_sample_counts_everything_but_retains_a_bounded_recent_window() {
        let mut sample = ErrorSample::new(4);
        assert!(sample.is_empty());
        let mut made = 0usize;
        for i in 0..1000 {
            sample.offer_with(|| {
                made += 1;
                FrontendError::new(Dialect::SQL, format!("err {i}"))
            });
        }
        assert_eq!(sample.seen(), 1000);
        assert_eq!(sample.len(), 4);
        // First 4 recorded eagerly, then one per THIN_EVERY offers: formatting is rare.
        assert!(
            made <= 4 + 1000 / ErrorSample::THIN_EVERY + 1,
            "{made} formats"
        );
        // The retained window drifts forward: the oldest entries have been evicted.
        let msgs: Vec<_> = sample.entries().map(|e| e.message.clone()).collect();
        assert!(!msgs.contains(&"err 0".to_string()), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.as_str() >= "err 5"), "{msgs:?}");
    }

    #[test]
    fn error_sample_with_zero_capacity_only_counts() {
        let mut sample = ErrorSample::new(0);
        for _ in 0..10 {
            assert!(!sample.would_record());
            sample.offer_with(|| unreachable!("capacity 0 must never format"));
        }
        assert_eq!(sample.seen(), 10);
        assert!(sample.is_empty());
    }

    #[test]
    fn parse_statements_lossy_default_skips_and_counts() {
        let toy = Toy(Dialect::new("toy"));
        let mut out = Vec::new();
        let mut errors = ErrorSample::new(8);
        // The default routes through parse_statements, which for Toy is all-or-nothing
        // per fragment; feed fragments separately to exercise the skip path.
        let skipped = toy.parse_statements_lossy("leaf:a; leaf:b", &mut out, &mut errors)
            + toy.parse_statements_lossy("nope", &mut out, &mut errors);
        assert_eq!(out.len(), 2);
        assert_eq!(skipped, 1);
        assert_eq!(errors.seen(), 1);
        assert_eq!(errors.entries().count(), 1);
    }

    #[test]
    fn frontend_errors_display_their_dialect() {
        let err = FrontendError::new(Dialect::FRAMES, "unexpected `)`");
        assert_eq!(err.to_string(), "frames parse error: unexpected `)`");
    }
}
