//! Node kinds and the grammar annotations the paper assumes (§4.1).
//!
//! Precision Interfaces does not interpret query semantics, but it does assume two pieces of
//! per-language annotation:
//!
//! 1. a mapping from some *terminal* node kinds to primitive data types (`StrExpr` → string,
//!    `NumExpr` → number) so that typed widgets (sliders, …) can be selected, and
//! 2. knowledge of which node kinds represent *collections* of sub-expressions (the projection
//!    list, the grouping list, …) so that widgets such as checkbox lists can be mapped to them.
//!
//! Both annotations live here, attached to [`NodeKind`].

use std::fmt;

/// The primitive type lattice used by widget rules (paper §4.3).
///
/// "Numerics can be cast to strings, and any type can be cast to a tree."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimitiveType {
    /// A numeric literal (integers, floats and hex constants).
    Num,
    /// A string literal or bare identifier-like terminal.
    Str,
    /// Anything else: an arbitrary subtree.
    Tree,
}

impl PrimitiveType {
    /// True when a value of type `self` can be used where `target` is expected.
    ///
    /// The cast order is `Num ⇒ Str ⇒ Tree`: a numeric domain can be shown in a textual
    /// widget, and any domain at all can be shown in a widget that swaps whole subtrees.
    pub fn castable_to(self, target: PrimitiveType) -> bool {
        match (self, target) {
            (a, b) if a == b => true,
            (PrimitiveType::Num, PrimitiveType::Str) => true,
            (_, PrimitiveType::Tree) => true,
            _ => false,
        }
    }

    /// Least upper bound of two types under the cast order.
    pub fn join(self, other: PrimitiveType) -> PrimitiveType {
        if self == other {
            self
        } else if self.castable_to(other) {
            other
        } else if other.castable_to(self) {
            self
        } else {
            PrimitiveType::Tree
        }
    }
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimitiveType::Num => "num",
            PrimitiveType::Str => "str",
            PrimitiveType::Tree => "tree",
        };
        f.write_str(s)
    }
}

/// What a collection node collects, for widgets that operate on lists of options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectionKind {
    /// Projection list: `SELECT a, b, c`.
    Projections,
    /// FROM list (tables, subqueries, UDF table functions).
    Relations,
    /// Grouping list: `GROUP BY a, b`.
    Groupings,
    /// Ordering list: `ORDER BY a, b`.
    Orderings,
    /// Conjunctive predicate list inside WHERE/HAVING.
    Predicates,
    /// Argument list of a function call.
    Arguments,
    /// WHEN/THEN arms of a CASE expression.
    CaseArms,
}

/// The kind of an AST node.
///
/// The set of kinds covers the SQL dialect exercised by the paper's three query logs
/// (SDSS, synthetic OLAP, ad-hoc Tableau exports).  `Other` is an escape hatch so that
/// front-ends for other languages can reuse the same tree model without extending the enum.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    // --- statement level -------------------------------------------------------------
    /// A full SELECT statement.
    Select,
    /// The projection clause (collection of [`NodeKind::ProjClause`]).
    Project,
    /// One projected expression (optionally aliased).
    ProjClause,
    /// The FROM clause (collection of relations).
    From,
    /// The WHERE clause.
    Where,
    /// The GROUP BY clause (collection of grouping expressions).
    GroupBy,
    /// One grouping expression.
    GroupClause,
    /// The HAVING clause.
    Having,
    /// The ORDER BY clause (collection of [`NodeKind::OrderClause`]).
    OrderBy,
    /// One ordering expression with direction attribute `dir`.
    OrderClause,
    /// LIMIT / TOP clause with the count as a child expression.
    Limit,
    /// DISTINCT marker on the projection.
    Distinct,

    // --- relations -------------------------------------------------------------------
    /// A base table reference; attribute `name`, optional `alias` and `schema`.
    TableRef,
    /// A derived table: subquery in FROM; optional `alias`.
    SubqueryRef,
    /// A table-valued function (UDF) in FROM, e.g. `dbo.fGetNearbyObjEq(...)`.
    TableFunc,
    /// An explicit JOIN node; attribute `join_type`; children: left, right, on-condition.
    Join,

    // --- expressions -----------------------------------------------------------------
    /// Binary expression; attribute `op` (`=`, `<`, `AND`, `+`, …).
    BiExpr,
    /// Unary expression; attribute `op` (`NOT`, `-`).
    UnExpr,
    /// Function call; first child is a [`NodeKind::FuncName`], remaining children are the
    /// arguments.
    FuncCall,
    /// Aggregate function call; first child is a [`NodeKind::FuncName`] (`COUNT`, `SUM`, …),
    /// remaining children are the arguments; optional `distinct` flag.
    AggCall,
    /// The name of a called function; attribute `name`.  Modelled as a child node (rather
    /// than an attribute of the call) so that changing only the function name produces a
    /// small, string-typed leaf diff that can map to its own widget (Figure 5b/5c).
    FuncName,
    /// CAST expression; attribute `ty` (target type name); one child.
    Cast,
    /// CASE expression; children are [`NodeKind::WhenArm`]s and an optional else expression.
    CaseExpr,
    /// One WHEN/THEN arm of a CASE expression; children: condition/match value, result.
    WhenArm,
    /// The ELSE branch of a CASE expression; one child.
    ElseArm,
    /// A column reference; attribute `name`, optional `table` qualifier.
    ColExpr,
    /// A string literal; attribute `value`.
    StrExpr,
    /// A numeric literal; attribute `value` (int or float).
    NumExpr,
    /// A hexadecimal literal (SDSS object ids); attribute `value` (i64).
    HexExpr,
    /// The `*` projection.
    Star,
    /// NULL literal.
    Null,
    /// A boolean literal; attribute `value`.
    BoolExpr,
    /// A parenthesised scalar subquery used inside an expression.
    ScalarSubquery,
    /// An IN-list / BETWEEN right-hand side holding several expressions.
    ExprList,

    // --- escape hatch ----------------------------------------------------------------
    /// A node kind from another language front-end; the string names the non-terminal.
    Other(String),
}

impl NodeKind {
    /// The primitive type of a *terminal* node of this kind, if any.
    ///
    /// This is the per-language annotation from §4.1: `StrExpr ↦ str`, `NumExpr ↦ num`, etc.
    /// Non-terminal kinds return `None`; the diff layer treats them as `tree`-typed.
    pub fn terminal_type(&self) -> Option<PrimitiveType> {
        match self {
            NodeKind::StrExpr => Some(PrimitiveType::Str),
            NodeKind::ColExpr => Some(PrimitiveType::Str),
            NodeKind::FuncName => Some(PrimitiveType::Str),
            NodeKind::NumExpr | NodeKind::HexExpr => Some(PrimitiveType::Num),
            NodeKind::BoolExpr => Some(PrimitiveType::Str),
            NodeKind::TableRef => Some(PrimitiveType::Str),
            _ => None,
        }
    }

    /// Whether nodes of this kind are collections of homogeneous sub-expressions, and if so
    /// what they collect.  Mirrors the `sel_core = sel_result (comma sel_result)*` idiom the
    /// paper calls out for the SQLite grammar.
    pub fn collection_kind(&self) -> Option<CollectionKind> {
        match self {
            NodeKind::Project => Some(CollectionKind::Projections),
            NodeKind::From => Some(CollectionKind::Relations),
            NodeKind::GroupBy => Some(CollectionKind::Groupings),
            NodeKind::OrderBy => Some(CollectionKind::Orderings),
            NodeKind::FuncCall | NodeKind::AggCall => Some(CollectionKind::Arguments),
            NodeKind::CaseExpr => Some(CollectionKind::CaseArms),
            _ => None,
        }
    }

    /// True for kinds that carry a literal payload in their attributes and have no children
    /// in well-formed trees.
    pub fn is_literal(&self) -> bool {
        matches!(
            self,
            NodeKind::StrExpr
                | NodeKind::NumExpr
                | NodeKind::HexExpr
                | NodeKind::BoolExpr
                | NodeKind::Null
                | NodeKind::Star
        )
    }

    /// Short display name used by the tree printer and by diff records (`type` column).
    pub fn name(&self) -> &str {
        match self {
            NodeKind::Select => "Select",
            NodeKind::Project => "Project",
            NodeKind::ProjClause => "ProjClause",
            NodeKind::From => "From",
            NodeKind::Where => "Where",
            NodeKind::GroupBy => "GroupBy",
            NodeKind::GroupClause => "GroupClause",
            NodeKind::Having => "Having",
            NodeKind::OrderBy => "OrderBy",
            NodeKind::OrderClause => "OrderClause",
            NodeKind::Limit => "Limit",
            NodeKind::Distinct => "Distinct",
            NodeKind::TableRef => "TableRef",
            NodeKind::SubqueryRef => "SubqueryRef",
            NodeKind::TableFunc => "TableFunc",
            NodeKind::Join => "Join",
            NodeKind::BiExpr => "BiExpr",
            NodeKind::UnExpr => "UnExpr",
            NodeKind::FuncCall => "FuncCall",
            NodeKind::AggCall => "AggCall",
            NodeKind::FuncName => "FuncName",
            NodeKind::Cast => "Cast",
            NodeKind::CaseExpr => "CaseExpr",
            NodeKind::WhenArm => "WhenArm",
            NodeKind::ElseArm => "ElseArm",
            NodeKind::ColExpr => "ColExpr",
            NodeKind::StrExpr => "StrExpr",
            NodeKind::NumExpr => "NumExpr",
            NodeKind::HexExpr => "HexExpr",
            NodeKind::Star => "Star",
            NodeKind::Null => "Null",
            NodeKind::BoolExpr => "BoolExpr",
            NodeKind::ScalarSubquery => "ScalarSubquery",
            NodeKind::ExprList => "ExprList",
            NodeKind::Other(s) => s.as_str(),
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_lattice_matches_paper() {
        // num -> str -> tree; str does not cast down to num.
        assert!(PrimitiveType::Num.castable_to(PrimitiveType::Str));
        assert!(PrimitiveType::Num.castable_to(PrimitiveType::Tree));
        assert!(PrimitiveType::Str.castable_to(PrimitiveType::Tree));
        assert!(!PrimitiveType::Str.castable_to(PrimitiveType::Num));
        assert!(!PrimitiveType::Tree.castable_to(PrimitiveType::Str));
        assert!(!PrimitiveType::Tree.castable_to(PrimitiveType::Num));
        for t in [PrimitiveType::Num, PrimitiveType::Str, PrimitiveType::Tree] {
            assert!(t.castable_to(t));
        }
    }

    #[test]
    fn join_is_least_upper_bound() {
        assert_eq!(
            PrimitiveType::Num.join(PrimitiveType::Str),
            PrimitiveType::Str
        );
        assert_eq!(
            PrimitiveType::Str.join(PrimitiveType::Num),
            PrimitiveType::Str
        );
        assert_eq!(
            PrimitiveType::Num.join(PrimitiveType::Num),
            PrimitiveType::Num
        );
        assert_eq!(
            PrimitiveType::Str.join(PrimitiveType::Tree),
            PrimitiveType::Tree
        );
    }

    #[test]
    fn terminal_annotations() {
        assert_eq!(NodeKind::StrExpr.terminal_type(), Some(PrimitiveType::Str));
        assert_eq!(NodeKind::NumExpr.terminal_type(), Some(PrimitiveType::Num));
        assert_eq!(NodeKind::HexExpr.terminal_type(), Some(PrimitiveType::Num));
        assert_eq!(NodeKind::BiExpr.terminal_type(), None);
        assert_eq!(NodeKind::Select.terminal_type(), None);
    }

    #[test]
    fn collection_annotations() {
        assert_eq!(
            NodeKind::Project.collection_kind(),
            Some(CollectionKind::Projections)
        );
        assert_eq!(
            NodeKind::From.collection_kind(),
            Some(CollectionKind::Relations)
        );
        assert_eq!(NodeKind::Where.collection_kind(), None);
        assert_eq!(NodeKind::ColExpr.collection_kind(), None);
    }

    #[test]
    fn other_kind_displays_its_name() {
        let k = NodeKind::Other("SparqlTriple".into());
        assert_eq!(k.to_string(), "SparqlTriple");
        assert_eq!(k.terminal_type(), None);
    }

    #[test]
    fn literal_kinds() {
        assert!(NodeKind::NumExpr.is_literal());
        assert!(NodeKind::Star.is_literal());
        assert!(!NodeKind::ProjClause.is_literal());
        assert!(!NodeKind::ColExpr.is_literal());
    }
}
