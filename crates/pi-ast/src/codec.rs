//! Binary snapshot codec primitives: varints, checksummed IO and a deduplicated node table.
//!
//! Mining state (dedup arenas, diff stores, alignment memos) survives process boundaries as
//! a compact, version-stamped binary snapshot.  This module holds the language-level layer
//! of that codec — the byte primitives shared by every section, plus the serialized form of
//! the tree model itself ([`Node`], [`NodeKind`], [`AttrValue`], [`Path`]):
//!
//! * **Primitives** — LEB128 varints for counts and indices, fixed-width little-endian
//!   integers for hashes and checksums, zigzag for signed values, length-prefixed UTF-8 for
//!   strings.  Everything reads/writes through `std::io`, so snapshots stream to files and
//!   sockets without intermediate buffers.
//! * **Integrity** — [`ChecksumWriter`] / [`ChecksumReader`] fold every byte into an
//!   FNV-1a checksum so a snapshot's producer can stamp a trailing sum and its consumer can
//!   reject *any* corruption with a clean [`CodecError::Corrupt`] — never a panic, never a
//!   silently wrong structure.
//! * **Structural sharing** — [`NodeTableBuilder`] serializes a set of trees as one table
//!   of *distinct* subtrees (children-first, deduplicated by structural identity), so a
//!   snapshot's size scales with distinct state: a subtree shared by a thousand class
//!   representatives is written once and re-shared (`Arc`-aliased) on load.  Each entry
//!   carries its memoized structural hash, which the reader verifies after rebuilding —
//!   a flipped byte anywhere in a tree payload fails restore instead of corrupting mining.
//!
//! Interned strings ([`crate::IStr`] payloads, [`crate::Sym`] attribute keys) serialize by
//! *content* and re-intern on load: the arenas are process-wide and content-hashed, so
//! restored trees hash and compare identically to the originals regardless of interning
//! order.

use crate::kind::NodeKind;
use crate::node::Node;
use crate::path::Path;
use crate::value::AttrValue;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a single length-prefixed string or byte payload (defence against corrupt
/// length prefixes driving huge allocations before the checksum check is reached).
const MAX_PAYLOAD: u64 = 1 << 28;

/// Errors produced while writing or reading a binary snapshot.
///
/// Restore is total: malformed input of any kind — truncation, bit flips, an unknown
/// version stamp — surfaces as an `Err`, never a panic and never a silently wrong
/// structure (tree payloads are re-verified against their stored structural hashes).
#[derive(Debug)]
pub enum CodecError {
    /// An underlying IO failure (includes truncation, surfaced as `UnexpectedEof`).
    Io(io::Error),
    /// The payload is malformed: bad magic, an invalid tag, an out-of-range index, a
    /// structural-hash or checksum mismatch.
    Corrupt(String),
    /// The snapshot was written by an incompatible format version.
    Version {
        /// The version stamp found in the snapshot header.
        found: u32,
        /// The single version this build can read.
        supported: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "snapshot io error: {e}"),
            CodecError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            CodecError::Version { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Shorthand for a malformed-payload error.
pub fn corrupt(msg: impl Into<String>) -> CodecError {
    CodecError::Corrupt(msg.into())
}

// ------------------------------------------------------------------ checksum adapters

/// FNV-1a offset basis / prime, matching the deterministic hashing used elsewhere in the
/// crate.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Frame checksums interleave this many independent FNV-1a accumulators (byte `p` feeds
/// lane `p % LANES`).  A single FNV chain is latency-bound — one dependent multiply per
/// byte puts a multi-megabyte snapshot's verify pass at milliseconds — while independent
/// lanes pipeline to roughly the multiplier's throughput.  Same error-detection class;
/// the lanes plus the total length fold into one `u64` at the end.
const LANES: usize = 8;

fn fnv_fold(mut sum: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        sum ^= u64::from(b);
        sum = sum.wrapping_mul(FNV_PRIME);
    }
    sum
}

/// Streaming state for the laned frame checksum; byte position decides the lane, so any
/// write/read chunking produces the same sum as [`checksum`] over the concatenation.
#[derive(Debug, Clone)]
struct LanedFnv {
    lanes: [u64; LANES],
    pos: usize,
}

impl LanedFnv {
    fn new() -> Self {
        LanedFnv {
            lanes: [FNV_OFFSET; LANES],
            pos: 0,
        }
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let lane = &mut self.lanes[self.pos % LANES];
            *lane = (*lane ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.pos += 1;
        }
    }

    fn sum(&self) -> u64 {
        finalize_lanes(&self.lanes, self.pos)
    }
}

fn finalize_lanes(lanes: &[u64; LANES], len: usize) -> u64 {
    let mut sum = FNV_OFFSET;
    for lane in lanes {
        sum = fnv_fold(sum, &lane.to_le_bytes());
    }
    fnv_fold(sum, &(len as u64).to_le_bytes())
}

/// One-shot checksum over a complete buffer — identical to streaming the same bytes
/// through [`ChecksumWriter`]/[`ChecksumReader`].  Readers that buffer a whole frame
/// verify it in one pass here instead of folding per `read` call.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut lanes = [FNV_OFFSET; LANES];
    let mut chunks = bytes.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, &b) in lanes.iter_mut().zip(chunk) {
            *lane = (*lane ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    for (lane, &b) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane = (*lane ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    finalize_lanes(&lanes, bytes.len())
}

/// A [`Write`] adapter folding every written byte into the laned FNV frame checksum.
///
/// Snapshot producers write their payload through this and stamp [`ChecksumWriter::sum`]
/// at the end, so consumers can verify the whole stream.
#[derive(Debug)]
pub struct ChecksumWriter<W> {
    inner: W,
    sum: LanedFnv,
}

impl<W: Write> ChecksumWriter<W> {
    /// Wraps a writer with a fresh checksum.
    pub fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            sum: LanedFnv::new(),
        }
    }

    /// The checksum over every byte written so far.
    pub fn sum(&self) -> u64 {
        self.sum.sum()
    }

    /// Unwraps the adapter, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The underlying writer (e.g. to append the checksum itself, outside the sum).
    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.sum.fold(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A [`Read`] adapter folding every consumed byte into the laned FNV frame checksum,
/// mirroring [`ChecksumWriter`].
#[derive(Debug)]
pub struct ChecksumReader<R> {
    inner: R,
    sum: LanedFnv,
}

impl<R: Read> ChecksumReader<R> {
    /// Wraps a reader with a fresh checksum.
    pub fn new(inner: R) -> Self {
        ChecksumReader {
            inner,
            sum: LanedFnv::new(),
        }
    }

    /// The checksum over every byte read so far.
    pub fn sum(&self) -> u64 {
        self.sum.sum()
    }

    /// The underlying reader (e.g. to read the trailing checksum, outside the sum).
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for ChecksumReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.sum.fold(&buf[..n]);
        Ok(n)
    }
}

// ------------------------------------------------------------------ primitives

/// Writes one byte.
pub fn put_u8<W: Write>(w: &mut W, v: u8) -> Result<(), CodecError> {
    w.write_all(&[v]).map_err(CodecError::Io)
}

/// Reads one byte.
pub fn take_u8<R: Read>(r: &mut R) -> Result<u8, CodecError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

/// Writes a fixed-width little-endian `u32` (version stamps).
pub fn put_u32<W: Write>(w: &mut W, v: u32) -> Result<(), CodecError> {
    w.write_all(&v.to_le_bytes()).map_err(CodecError::Io)
}

/// Reads a fixed-width little-endian `u32`.
pub fn take_u32<R: Read>(r: &mut R) -> Result<u32, CodecError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a fixed-width little-endian `u64` (hashes, checksums).
pub fn put_u64<W: Write>(w: &mut W, v: u64) -> Result<(), CodecError> {
    w.write_all(&v.to_le_bytes()).map_err(CodecError::Io)
}

/// Reads a fixed-width little-endian `u64`.
pub fn take_u64<R: Read>(r: &mut R) -> Result<u64, CodecError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes an LEB128 varint (counts, indices — small values cost one byte).
pub fn put_varint<W: Write>(w: &mut W, mut v: u64) -> Result<(), CodecError> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return put_u8(w, byte);
        }
        put_u8(w, byte | 0x80)?;
    }
}

/// Reads an LEB128 varint, rejecting over-long encodings.
pub fn take_varint<R: Read>(r: &mut R) -> Result<u64, CodecError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = take_u8(r)?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(corrupt("varint longer than 10 bytes"))
}

/// Reads a varint and checks it fits a `usize` count bounded by `MAX_PAYLOAD`.
pub fn take_count<R: Read>(r: &mut R) -> Result<usize, CodecError> {
    let v = take_varint(r)?;
    if v > MAX_PAYLOAD {
        return Err(corrupt(format!("count {v} exceeds sanity bound")));
    }
    Ok(v as usize)
}

/// Writes a signed integer as a zigzag-encoded varint.
pub fn put_zigzag<W: Write>(w: &mut W, v: i64) -> Result<(), CodecError> {
    put_varint(w, ((v << 1) ^ (v >> 63)) as u64)
}

/// Reads a zigzag-encoded signed integer.
pub fn take_zigzag<R: Read>(r: &mut R) -> Result<i64, CodecError> {
    let v = take_varint(r)?;
    Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
}

/// Writes an `f64` by bit pattern (exact round-trip, NaN included).
pub fn put_f64<W: Write>(w: &mut W, v: f64) -> Result<(), CodecError> {
    put_u64(w, v.to_bits())
}

/// Reads an `f64` by bit pattern.
pub fn take_f64<R: Read>(r: &mut R) -> Result<f64, CodecError> {
    Ok(f64::from_bits(take_u64(r)?))
}

/// Writes a boolean as one byte.
pub fn put_bool<W: Write>(w: &mut W, v: bool) -> Result<(), CodecError> {
    put_u8(w, u8::from(v))
}

/// Reads a boolean, rejecting any byte other than 0 or 1.
pub fn take_bool<R: Read>(r: &mut R) -> Result<bool, CodecError> {
    match take_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(corrupt(format!("invalid bool byte {other}"))),
    }
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_str<W: Write>(w: &mut W, s: &str) -> Result<(), CodecError> {
    put_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes()).map_err(CodecError::Io)
}

/// Reads a length-prefixed UTF-8 string, validating the encoding.
pub fn take_str<R: Read>(r: &mut R) -> Result<String, CodecError> {
    let len = take_count(r)?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("string payload is not UTF-8"))
}

// ------------------------------------------------------------------ journal records

/// Frames one journal record: `varint(len) ++ payload ++ u64 checksum(payload)`.
///
/// Records written back-to-back form an append-only log that [`RecordScanner`] can replay,
/// stopping cleanly at the first torn or corrupt suffix (a crash mid-append leaves a
/// partial frame; a record is only ever surfaced once its full payload verifies).
pub fn put_record<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), CodecError> {
    if payload.len() as u64 > MAX_PAYLOAD {
        return Err(corrupt(format!(
            "record payload {} exceeds sanity bound",
            payload.len()
        )));
    }
    put_varint(w, payload.len() as u64)?;
    w.write_all(payload).map_err(CodecError::Io)?;
    put_u64(w, checksum(payload))
}

/// [`put_record`] into a fresh buffer — one contiguous frame, so callers that need
/// all-or-nothing visibility can hand the bytes to a single `write_all`.
pub fn record_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 12);
    put_record(&mut buf, payload).expect("Vec write is infallible and payload is bounded");
    buf
}

/// Replays a buffer of [`put_record`] frames, yielding each verified payload in order.
///
/// The scan is *tolerant of torn tails*: a truncated length prefix, a payload shorter than
/// its declared length, an absurd length, or a checksum mismatch all stop the scan at the
/// last good frame boundary instead of erroring — exactly the states a crash mid-append
/// (or a partial page flush) leaves behind.  [`RecordScanner::valid_len`] reports the byte
/// offset of that boundary (where a recovering writer should truncate and resume) and
/// [`RecordScanner::torn`] whether anything was discarded.
#[derive(Debug)]
pub struct RecordScanner<'a> {
    buf: &'a [u8],
    at: usize,
    torn: bool,
}

impl<'a> RecordScanner<'a> {
    /// Starts a scan at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        RecordScanner {
            buf,
            at: 0,
            torn: false,
        }
    }

    /// Byte length of the verified prefix: every frame before this offset round-tripped.
    pub fn valid_len(&self) -> usize {
        self.at
    }

    /// True once the scan hit a torn or corrupt suffix (only meaningful after
    /// [`next_record`](Self::next_record) has returned `None`).
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// Bytes past the verified prefix — the torn tail a recovering writer discards.
    pub fn trailing_bytes(&self) -> usize {
        self.buf.len() - self.at
    }

    /// The next verified payload, or `None` at a clean end of log *or* a torn tail
    /// (distinguish with [`torn`](Self::torn)).
    #[allow(clippy::should_implement_trait)]
    pub fn next_record(&mut self) -> Option<&'a [u8]> {
        if self.torn || self.at == self.buf.len() {
            return None;
        }
        let rest = &self.buf[self.at..];
        // Decode the varint length prefix by hand so truncation mid-prefix is torn, not Err.
        let mut len = 0u64;
        let mut prefix = 0usize;
        loop {
            if prefix >= rest.len() || prefix >= 10 {
                self.torn = true;
                return None;
            }
            let byte = rest[prefix];
            len |= u64::from(byte & 0x7f) << (7 * prefix as u32);
            prefix += 1;
            if byte & 0x80 == 0 {
                break;
            }
        }
        if len > MAX_PAYLOAD {
            self.torn = true;
            return None;
        }
        let len = len as usize;
        let Some(frame) = rest.get(prefix..prefix + len + 8) else {
            self.torn = true;
            return None;
        };
        let payload = &frame[..len];
        let stored = u64::from_le_bytes(frame[len..].try_into().expect("8-byte checksum"));
        if checksum(payload) != stored {
            self.torn = true;
            return None;
        }
        self.at += prefix + len + 8;
        Some(payload)
    }
}

// ------------------------------------------------------------------ path / kind / value

/// Writes a [`Path`] as a varint step count followed by its steps.
pub fn put_path<W: Write>(w: &mut W, path: &Path) -> Result<(), CodecError> {
    put_varint(w, path.steps().len() as u64)?;
    for &step in path.steps() {
        put_varint(w, step as u64)?;
    }
    Ok(())
}

/// Reads a [`Path`].
pub fn take_path<R: Read>(r: &mut R) -> Result<Path, CodecError> {
    let len = take_count(r)?;
    let mut steps = Vec::with_capacity(len.min(64));
    for _ in 0..len {
        steps.push(take_varint(r)? as usize);
    }
    Ok(Path::from_steps(steps))
}

/// The tag minted for [`NodeKind::Other`]; named kinds use their declaration index.
const KIND_OTHER_TAG: u8 = 255;

/// Named kinds in declaration order.  The *position* of each kind in this table is its wire
/// tag, so reordering or inserting mid-table is a format break (bump the snapshot version).
const KIND_TABLE: [NodeKind; 34] = [
    NodeKind::Select,
    NodeKind::Project,
    NodeKind::ProjClause,
    NodeKind::From,
    NodeKind::Where,
    NodeKind::GroupBy,
    NodeKind::GroupClause,
    NodeKind::Having,
    NodeKind::OrderBy,
    NodeKind::OrderClause,
    NodeKind::Limit,
    NodeKind::Distinct,
    NodeKind::TableRef,
    NodeKind::SubqueryRef,
    NodeKind::TableFunc,
    NodeKind::Join,
    NodeKind::BiExpr,
    NodeKind::UnExpr,
    NodeKind::FuncCall,
    NodeKind::AggCall,
    NodeKind::FuncName,
    NodeKind::Cast,
    NodeKind::CaseExpr,
    NodeKind::WhenArm,
    NodeKind::ElseArm,
    NodeKind::ColExpr,
    NodeKind::StrExpr,
    NodeKind::NumExpr,
    NodeKind::HexExpr,
    NodeKind::Star,
    NodeKind::Null,
    NodeKind::BoolExpr,
    NodeKind::ScalarSubquery,
    NodeKind::ExprList,
];

/// Writes a [`NodeKind`] as a one-byte tag (plus the name string for `Other`).
pub fn put_kind<W: Write>(w: &mut W, kind: &NodeKind) -> Result<(), CodecError> {
    if let NodeKind::Other(name) = kind {
        put_u8(w, KIND_OTHER_TAG)?;
        return put_str(w, name);
    }
    match KIND_TABLE.iter().position(|k| k == kind) {
        Some(tag) => put_u8(w, tag as u8),
        None => Err(corrupt(format!("unmapped node kind {kind:?}"))),
    }
}

/// Reads a [`NodeKind`].
pub fn take_kind<R: Read>(r: &mut R) -> Result<NodeKind, CodecError> {
    let tag = take_u8(r)?;
    if tag == KIND_OTHER_TAG {
        return Ok(NodeKind::Other(take_str(r)?));
    }
    KIND_TABLE
        .get(tag as usize)
        .cloned()
        .ok_or_else(|| corrupt(format!("invalid node kind tag {tag}")))
}

/// Writes an [`AttrValue`] as a one-byte tag plus its payload.
pub fn put_attr_value<W: Write>(w: &mut W, value: &AttrValue) -> Result<(), CodecError> {
    match value {
        AttrValue::Str(s) => {
            put_u8(w, 0)?;
            put_str(w, s.as_str())
        }
        AttrValue::Int(i) => {
            put_u8(w, 1)?;
            put_zigzag(w, *i)
        }
        AttrValue::Float(f) => {
            put_u8(w, 2)?;
            put_f64(w, *f)
        }
        AttrValue::Bool(b) => {
            put_u8(w, 3)?;
            put_bool(w, *b)
        }
    }
}

/// Reads an [`AttrValue`]; string payloads re-intern by content.
pub fn take_attr_value<R: Read>(r: &mut R) -> Result<AttrValue, CodecError> {
    match take_u8(r)? {
        0 => Ok(AttrValue::from(take_str(r)?)),
        1 => Ok(AttrValue::Int(take_zigzag(r)?)),
        2 => Ok(AttrValue::Float(take_f64(r)?)),
        3 => Ok(AttrValue::Bool(take_bool(r)?)),
        other => Err(corrupt(format!("invalid attr value tag {other}"))),
    }
}

// ------------------------------------------------------------------ node table

/// Builds the deduplicated table of distinct subtrees referenced by a snapshot.
///
/// Usage is two-phase: every section that references trees first [`intern`]s them (a no-op
/// for subtrees already seen — deduplication is by structural identity, pointer-aliased
/// clones short-circuit), then the table is written once with [`write_to`] and sections
/// refer to trees by their `u32` table index.  Entries are ordered children-first, so the
/// reader can rebuild each tree from already-rebuilt children in a single pass,
/// `Arc`-sharing every repeated subtree.
///
/// [`intern`]: NodeTableBuilder::intern
/// [`write_to`]: NodeTableBuilder::write_to
#[derive(Debug, Default)]
pub struct NodeTableBuilder {
    /// Structural hash → indices of entries carrying that hash (one except under a real
    /// 64-bit collision; membership is decided by full equality, mirroring the dedup
    /// table's collision contract).
    by_hash: HashMap<u64, Vec<u32>>,
    /// Distinct subtrees in emission order, each with the table indices of its children.
    entries: Vec<(Node, Vec<u32>)>,
}

impl NodeTableBuilder {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct subtrees interned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no subtree has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lookup(&self, node: &Node) -> Option<u32> {
        let indices = self.by_hash.get(&node.structural_hash())?;
        indices.iter().copied().find(|&i| {
            let seen = &self.entries[i as usize].0;
            seen.ptr_eq(node) || seen == node
        })
    }

    /// Interns a tree (and, recursively, every distinct subtree of it), returning its table
    /// index.  Idempotent: structurally identical trees map to one entry.
    pub fn intern(&mut self, node: &Node) -> u32 {
        if let Some(idx) = self.lookup(node) {
            return idx;
        }
        let children: Vec<u32> = node.children().iter().map(|c| self.intern(c)).collect();
        let idx = u32::try_from(self.entries.len()).expect("fewer than 2^32 distinct subtrees");
        self.by_hash
            .entry(node.structural_hash())
            .or_default()
            .push(idx);
        self.entries.push((node.clone(), children));
        idx
    }

    /// Writes the table: a varint entry count, then per entry the kind, attributes, child
    /// indices (all smaller than the entry's own index) and the memoized structural hash
    /// the reader re-verifies.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        put_varint(w, self.entries.len() as u64)?;
        for (node, children) in &self.entries {
            put_kind(w, node.kind_ref())?;
            put_varint(w, node.attrs().len() as u64)?;
            for (key, value) in node.attrs() {
                put_str(w, key.as_str())?;
                put_attr_value(w, value)?;
            }
            put_varint(w, children.len() as u64)?;
            for &child in children {
                put_varint(w, u64::from(child))?;
            }
            put_u64(w, node.structural_hash())?;
        }
        Ok(())
    }
}

/// Reads a node table written by [`NodeTableBuilder::write_to`], rebuilding every distinct
/// subtree exactly once (repeated subtrees are `Arc`-shared) and verifying each rebuilt
/// tree's structural hash against the stored one.
pub fn read_node_table<R: Read>(r: &mut R) -> Result<Vec<Node>, CodecError> {
    let count = take_count(r)?;
    let mut nodes: Vec<Node> = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        let kind = take_kind(r)?;
        let mut node = Node::new(kind);
        let attr_count = take_count(r)?;
        for _ in 0..attr_count {
            let key = take_str(r)?;
            let value = take_attr_value(r)?;
            node = node.with_attr(&key, value);
        }
        let child_count = take_count(r)?;
        let mut children = Vec::with_capacity(child_count.min(64));
        for _ in 0..child_count {
            let child = take_varint(r)? as usize;
            if child >= i {
                return Err(corrupt(format!(
                    "node {i} references not-yet-defined child {child}"
                )));
            }
            children.push(nodes[child].clone());
        }
        node = node.with_children(children);
        let stored_hash = take_u64(r)?;
        if node.structural_hash() != stored_hash {
            return Err(corrupt(format!(
                "node {i} structural hash mismatch (stored {stored_hash:#x}, rebuilt {:#x})",
                node.structural_hash()
            )));
        }
        nodes.push(node);
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::NodeKind;

    fn sample_tree(tag: i64) -> Node {
        Node::new(NodeKind::Select)
            .with_child(
                Node::new(NodeKind::Project)
                    .with_child(Node::new(NodeKind::ProjClause).with_child(Node::column("sales"))),
            )
            .with_child(Node::new(NodeKind::From).with_child(Node::table("t")))
            .with_child(
                Node::new(NodeKind::Where).with_child(
                    Node::new(NodeKind::BiExpr)
                        .with_attr("op", "=")
                        .with_child(Node::column("x"))
                        .with_child(Node::int(tag)),
                ),
            )
    }

    #[test]
    fn varints_round_trip_across_magnitudes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v).unwrap();
            assert_eq!(take_varint(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, -123_456] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v).unwrap();
            assert_eq!(take_zigzag(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn truncated_primitives_err_cleanly() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello world").unwrap();
        buf.truncate(4);
        assert!(take_str(&mut buf.as_slice()).is_err());
        assert!(take_varint(&mut [0x80u8, 0x80].as_slice()).is_err());
        assert!(take_bool(&mut [7u8].as_slice()).is_err());
    }

    #[test]
    fn kinds_and_values_round_trip() {
        for kind in KIND_TABLE
            .iter()
            .cloned()
            .chain([NodeKind::Other("SparqlTriple".to_string())])
        {
            let mut buf = Vec::new();
            put_kind(&mut buf, &kind).unwrap();
            assert_eq!(take_kind(&mut buf.as_slice()).unwrap(), kind);
        }
        for value in [
            AttrValue::from("abc"),
            AttrValue::Int(-9),
            AttrValue::Float(2.5),
            AttrValue::Bool(true),
        ] {
            let mut buf = Vec::new();
            put_attr_value(&mut buf, &value).unwrap();
            assert_eq!(take_attr_value(&mut buf.as_slice()).unwrap(), value);
        }
        let path = Path::from_steps([0usize, 3, 1]);
        let mut buf = Vec::new();
        put_path(&mut buf, &path).unwrap();
        assert_eq!(take_path(&mut buf.as_slice()).unwrap(), path);
    }

    #[test]
    fn node_table_deduplicates_shared_subtrees() {
        let a = sample_tree(1);
        let b = sample_tree(2);
        let mut table = NodeTableBuilder::new();
        let ia = table.intern(&a);
        let ib = table.intern(&b);
        assert_ne!(ia, ib);
        // Interning again is a no-op.
        assert_eq!(table.intern(&a), ia);
        // The two trees differ only in the literal: the shared prefix (projection, FROM,
        // column refs…) must appear once, so the table is far smaller than 2× a tree.
        assert!(table.len() < a.size() + b.size());

        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        let nodes = read_node_table(&mut buf.as_slice()).unwrap();
        assert_eq!(nodes.len(), table.len());
        assert_eq!(nodes[ia as usize], a);
        assert_eq!(nodes[ib as usize], b);
        // Structurally shared subtrees come back physically shared.
        assert!(nodes[ia as usize].children()[1].ptr_eq(&nodes[ib as usize].children()[1]));
    }

    #[test]
    fn corrupted_node_table_errs_instead_of_misreading() {
        let mut table = NodeTableBuilder::new();
        table.intern(&sample_tree(7));
        let mut buf = Vec::new();
        table.write_to(&mut buf).unwrap();
        // Flip one byte at every offset: every mutation must either read back the exact
        // same table or fail cleanly — never panic, never return a silently different tree.
        let original = read_node_table(&mut buf.as_slice()).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x41;
            if let Ok(nodes) = read_node_table(&mut bad.as_slice()) {
                assert_eq!(nodes, original, "byte {i} silently changed the table");
            }
        }
        // Truncations fail cleanly too.
        for len in 0..buf.len() {
            assert!(read_node_table(&mut buf[..len].as_ref()).is_err());
        }
    }

    #[test]
    fn record_log_round_trips_and_reports_clean_end() {
        let payloads: Vec<Vec<u8>> = vec![
            b"first".to_vec(),
            Vec::new(),
            vec![0xAB; 300],
            b"last record".to_vec(),
        ];
        let mut log = Vec::new();
        for p in &payloads {
            put_record(&mut log, p).unwrap();
        }
        let mut scan = RecordScanner::new(&log);
        let mut seen = Vec::new();
        while let Some(p) = scan.next_record() {
            seen.push(p.to_vec());
        }
        assert_eq!(seen, payloads);
        assert!(!scan.torn());
        assert_eq!(scan.valid_len(), log.len());
        assert_eq!(scan.trailing_bytes(), 0);
        // record_frame produces the exact same bytes as put_record.
        assert_eq!(record_frame(b"first"), &log[..b"first".len() + 9]);
    }

    #[test]
    fn record_scanner_discards_torn_and_corrupt_tails() {
        let mut log = Vec::new();
        put_record(&mut log, b"good one").unwrap();
        put_record(&mut log, b"good two").unwrap();
        let intact = log.len();
        put_record(&mut log, b"the record a crash tears").unwrap();

        // Every truncation point inside the last frame must yield exactly the two intact
        // records and flag the tail as torn; truncating at the frame boundary is clean.
        for cut in intact..log.len() {
            let mut scan = RecordScanner::new(&log[..cut]);
            assert_eq!(scan.next_record(), Some(b"good one".as_slice()));
            assert_eq!(scan.next_record(), Some(b"good two".as_slice()));
            assert_eq!(scan.next_record(), None);
            assert_eq!(scan.torn(), cut != intact, "cut at byte {cut}");
            assert_eq!(scan.valid_len(), intact);
            assert_eq!(scan.trailing_bytes(), cut - intact);
        }

        // A bit flip anywhere in the tail frame (length, payload or checksum) is discarded
        // rather than replayed; flips in earlier frames stop the scan at the damage point.
        for i in 0..log.len() {
            let mut bad = log.clone();
            bad[i] ^= 0x10;
            let mut scan = RecordScanner::new(&bad);
            let mut seen = 0;
            while let Some(p) = scan.next_record() {
                assert!(p == b"good one" || p == b"good two" || p == b"the record a crash tears");
                seen += 1;
            }
            assert!(seen < 3, "flip at byte {i} replayed the corrupt log fully");
            assert!(scan.torn(), "flip at byte {i} was not flagged");
        }
    }

    #[test]
    fn checksum_adapters_agree_and_detect_flips() {
        let payload = b"snapshot payload bytes".to_vec();
        let mut sink = Vec::new();
        let mut cw = ChecksumWriter::new(&mut sink);
        cw.write_all(&payload).unwrap();
        let written_sum = cw.sum();

        let mut cr = ChecksumReader::new(payload.as_slice());
        let mut out = Vec::new();
        cr.read_to_end(&mut out).unwrap();
        assert_eq!(cr.sum(), written_sum);

        let mut flipped = payload.clone();
        flipped[3] ^= 1;
        let mut cr2 = ChecksumReader::new(flipped.as_slice());
        std::io::copy(&mut cr2, &mut std::io::sink()).unwrap();
        assert_ne!(cr2.sum(), written_sum);
    }
}
