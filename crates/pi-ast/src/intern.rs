//! A process-wide interned table of attribute names.
//!
//! Query ASTs carry a tiny vocabulary of attribute keys (`name`, `value`, `op`, `alias`, …)
//! repeated across millions of nodes.  Interning replaces the per-node `String` keys with a
//! copyable [`Sym`] handle: equality is a `u32` compare, and each symbol's 64-bit string hash
//! is computed once at interning time so structural hashing never re-reads key bytes.
//!
//! Two design points matter for the rest of the workspace:
//!
//! * Interned strings are leaked (`Box::leak`) and the handle carries the `&'static str` and
//!   its precomputed hash **inline**, so [`Sym::as_str`] and [`Sym::hash64`] are field reads —
//!   the table lock is only touched when translating a `&str` into a `Sym`.  The vocabulary is
//!   bounded by the grammar, so the leak is a few hundred bytes per process.
//! * [`Sym::hash64`] is derived from the *string*, not the intern id, so structural hashes are
//!   independent of interning order — parallel and serial pipelines that intern symbols in
//!   different orders still produce byte-identical hashes.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

/// An interned attribute name.
///
/// `Sym` is a cheap copyable handle; two `Sym`s are equal iff their strings are equal
/// (within one process), and equality/ordering compare only the `u32` id.  Obtain one with
/// [`Sym::intern`] and read it back with [`Sym::as_str`] (a field read, no lock).
#[derive(Debug, Clone, Copy)]
pub struct Sym {
    id: u32,
    hash: u64,
    text: &'static str,
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.id);
    }
}

struct Interner {
    /// Leaked name → fully materialised symbol.
    by_name: HashMap<&'static str, Sym>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
        })
    })
}

/// FNV-1a over a string; deterministic across runs and platforms, `const`-evaluable so
/// domain-separator seeds can be baked in at compile time.
pub(crate) const fn str_hash64(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        i += 1;
    }
    h
}

impl Sym {
    /// Interns a string, returning its symbol (inserting it on first sight).
    pub fn intern(name: &str) -> Sym {
        if let Some(sym) = Sym::lookup(name) {
            return sym;
        }
        let mut t = table().write().expect("interner poisoned");
        // Re-check under the write lock: another thread may have inserted meanwhile.
        if let Some(&sym) = t.by_name.get(name) {
            return sym;
        }
        let id = u32::try_from(t.by_name.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        let sym = Sym {
            id,
            hash: str_hash64(leaked),
            text: leaked,
        };
        t.by_name.insert(leaked, sym);
        sym
    }

    /// Looks a string up without interning it; `None` when it was never interned.
    pub fn lookup(name: &str) -> Option<Sym> {
        let t = table().read().expect("interner poisoned");
        t.by_name.get(name).copied()
    }

    /// The interned string (a field read, no lock).
    pub fn as_str(self) -> &'static str {
        self.text
    }

    /// The symbol's precomputed 64-bit string hash (independent of interning order; a field
    /// read, no lock).
    pub fn hash64(self) -> u64 {
        self.hash
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::intern("name");
        let b = Sym::intern("name");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "name");
        assert_eq!(a.to_string(), "name");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Sym::intern("alpha_key");
        let b = Sym::intern("beta_key");
        assert_ne!(a, b);
        assert_ne!(a.hash64(), b.hash64());
    }

    #[test]
    fn lookup_does_not_insert() {
        assert!(Sym::lookup("never_interned_key_xyzzy").is_none());
        let s = Sym::intern("now_interned_key_xyzzy");
        assert_eq!(Sym::lookup("now_interned_key_xyzzy"), Some(s));
    }

    #[test]
    fn hash_matches_direct_fnv() {
        let s = Sym::intern("op");
        assert_eq!(s.hash64(), str_hash64("op"));
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| Sym::intern(&format!("threaded_{}", (t + i) % 20)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread resolved the same strings to the same symbols.
        for w in all.windows(2) {
            let strs_a: Vec<_> = w[0].iter().map(|s| s.as_str()).collect();
            let strs_b: Vec<_> = w[1].iter().map(|s| s.as_str()).collect();
            for (sa, sb) in strs_a.iter().zip(&strs_b) {
                if sa == sb {
                    assert_eq!(Sym::lookup(sa), Sym::lookup(sb));
                }
            }
        }
    }
}
