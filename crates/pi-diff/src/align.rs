//! Ordered tree matching and extraction of minimal changed subtrees ("leaf diffs").
//!
//! The matcher preserves ancestor relationships and left-to-right sibling order, in the spirit
//! of the ordered tree matching algorithm the paper references (Bille's survey).  It proceeds
//! top-down:
//!
//! * two nodes with different labels (kind or attributes) are reported as a single replacement
//!   of the whole subtree;
//! * two nodes with the same label have their child lists aligned — exactly-equal subtrees are
//!   anchored with a longest-common-subsequence pass over structural hashes, and whatever sits
//!   between anchors is paired positionally and recursed into (or reported as an insertion /
//!   deletion when one side runs out).

use pi_ast::{Node, Path};

/// One minimal changed subtree between two trees.
///
/// Both sides alias their source queries: [`Node`] is a copy-on-write handle, so "cloning a
/// subtree out" of a query at extraction time is a refcount bump, after which diff records,
/// stores, widget domains and applied interactions all share the same allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafChange {
    /// Location of the change.  For replacements and deletions this is the subtree's path in
    /// the *source* tree; for insertions it is the position (in source coordinates) where the
    /// new subtree appears.
    pub path: Path,
    /// The subtree in the source tree (`None` for insertions).
    pub before: Option<Node>,
    /// The subtree in the target tree (`None` for deletions).
    pub after: Option<Node>,
}

impl LeafChange {
    /// True when this change replaces one subtree by another.
    pub fn is_replacement(&self) -> bool {
        self.before.is_some() && self.after.is_some()
    }
}

/// Computes the minimal changed subtrees that transform `a` into `b`.
pub fn leaf_changes(a: &Node, b: &Node) -> Vec<LeafChange> {
    let mut out = Vec::new();
    diff_nodes(a, b, &Path::root(), &mut out);
    out
}

/// Convenience alias of [`leaf_changes`], named after its role in the pipeline.
pub fn diff_trees(a: &Node, b: &Node) -> Vec<LeafChange> {
    leaf_changes(a, b)
}

fn diff_nodes(a: &Node, b: &Node, path: &Path, out: &mut Vec<LeafChange>) {
    // O(1) equal-subtree short-circuit on the memoized structural hash — this, not the deep
    // `==`, is what makes pairwise alignment cheap on mostly-identical log queries.
    if a.same_tree(b) {
        return;
    }
    if !a.same_label(b) {
        out.push(LeafChange {
            path: path.clone(),
            before: Some(a.clone()),
            after: Some(b.clone()),
        });
        return;
    }
    align_children(a, b, path, out);
}

/// Aligns the child lists of two same-labelled nodes and recurses.
fn align_children(a: &Node, b: &Node, path: &Path, out: &mut Vec<LeafChange>) {
    let ac = a.children();
    let bc = b.children();
    let (n, m) = (ac.len(), bc.len());

    // Anchor exactly-equal subtrees with an LCS over structural hashes.  Child lists of log
    // queries overwhelmingly agree at both ends (one clause changed in the middle), so trim
    // the common prefix and suffix first: greedily matching equal ends always yields *a*
    // maximal LCS, and trimming shrinks the quadratic DP to the changed middle (often
    // empty).  When sibling hashes repeat, this is a different — equally optimal —
    // tie-break than the untrimmed DP walk would pick: end-anchored matches keep changes
    // local (one in-place replacement rather than a delete/insert pair straddling the
    // duplicate), which is at worst neutral for the record count.
    let mut prefix = 0usize;
    while prefix < n && prefix < m && ac[prefix].same_tree(&bc[prefix]) {
        prefix += 1;
    }
    let mut suffix = 0usize;
    while suffix < n - prefix
        && suffix < m - prefix
        && ac[n - 1 - suffix].same_tree(&bc[m - 1 - suffix])
    {
        suffix += 1;
    }
    let ah: Vec<u64> = ac[prefix..n - suffix]
        .iter()
        .map(Node::structural_hash)
        .collect();
    let bh: Vec<u64> = bc[prefix..m - suffix]
        .iter()
        .map(Node::structural_hash)
        .collect();
    let mut anchors: Vec<(usize, usize)> = (0..prefix).map(|k| (k, k)).collect();
    anchors.extend(
        lcs_pairs(&ah, &bh)
            .into_iter()
            .map(|(i, j)| (i + prefix, j + prefix)),
    );
    anchors.extend((0..suffix).map(|k| (n - suffix + k, m - suffix + k)));

    let mut ai = 0usize;
    let mut bi = 0usize;
    for &(anchor_a, anchor_b) in anchors.iter().chain(std::iter::once(&(ac.len(), bc.len()))) {
        // Everything between the previous anchor and this one is a "gap" of unmatched children.
        let gap_a = &ac[ai..anchor_a];
        let gap_b = &bc[bi..anchor_b];
        let paired = gap_a.len().min(gap_b.len());
        for k in 0..paired {
            diff_nodes(&gap_a[k], &gap_b[k], &path.child(ai + k), out);
        }
        // Source has extra children: deletions.
        for (k, extra) in gap_a.iter().enumerate().skip(paired) {
            out.push(LeafChange {
                path: path.child(ai + k),
                before: Some(extra.clone()),
                after: None,
            });
        }
        // Target has extra children: insertions.  Their path records where they would be
        // inserted, expressed in source coordinates.
        for (k, extra) in gap_b.iter().enumerate().skip(paired) {
            out.push(LeafChange {
                path: path.child(ai + k),
                before: None,
                after: Some(extra.clone()),
            });
        }
        ai = anchor_a + 1;
        bi = anchor_b + 1;
    }
}

/// Longest common subsequence over two hash sequences, returned as index pairs.
fn lcs_pairs(a: &[u64], b: &[u64]) -> Vec<(usize, usize)> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // dp[i·w + j] = LCS length of a[i..], b[j..], in one flat row-major buffer (one
    // allocation instead of a Vec per row, and sequential index arithmetic the optimiser
    // can keep in registers).
    let w = m + 1;
    let mut dp = vec![0u32; (n + 1) * w];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i * w + j] = if a[i] == b[j] {
                dp[(i + 1) * w + j + 1] + 1
            } else {
                dp[(i + 1) * w + j].max(dp[i * w + j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[(i + 1) * w + j] >= dp[i * w + j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_ast::NodeKind;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    #[test]
    fn equal_trees_have_no_changes() {
        let q = parse("SELECT a, b FROM t WHERE c = 1").unwrap();
        assert!(leaf_changes(&q, &q).is_empty());
    }

    #[test]
    fn single_literal_change_is_one_leaf() {
        let a = parse("SELECT a FROM t WHERE c = 1").unwrap();
        let b = parse("SELECT a FROM t WHERE c = 2").unwrap();
        let changes = leaf_changes(&a, &b);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].is_replacement());
        assert_eq!(
            changes[0].before.as_ref().unwrap().numeric_value(),
            Some(1.0)
        );
        assert_eq!(
            changes[0].after.as_ref().unwrap().numeric_value(),
            Some(2.0)
        );
    }

    #[test]
    fn completely_different_roots_collapse_to_one_change() {
        let a = parse("SELECT a FROM t").unwrap();
        let b = parse("SELECT DISTINCT a FROM t").unwrap();
        // The DISTINCT flag lives in the root's attributes, so the whole tree is replaced.
        let changes = leaf_changes(&a, &b);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].path.is_root());
    }

    #[test]
    fn insertion_in_the_middle_is_detected_without_spurious_changes() {
        let a = parse("SELECT a, c FROM t").unwrap();
        let b = parse("SELECT a, b, c FROM t").unwrap();
        let changes = leaf_changes(&a, &b);
        assert_eq!(changes.len(), 1, "{changes:#?}");
        assert!(changes[0].before.is_none());
        assert_eq!(
            changes[0].after.as_ref().unwrap().kind(),
            NodeKind::ProjClause
        );
        // Inserted at index 1 of the projection list.
        assert_eq!(changes[0].path.to_string(), "0/1");
    }

    #[test]
    fn deletion_at_the_front_is_detected() {
        let a = parse("SELECT COUNT(Delay), DestState FROM ontime").unwrap();
        let b = parse("SELECT DestState FROM ontime").unwrap();
        let changes = leaf_changes(&a, &b);
        assert_eq!(changes.len(), 1, "{changes:#?}");
        assert!(changes[0].after.is_none());
        assert_eq!(changes[0].path.to_string(), "0/0");
    }

    #[test]
    fn multiple_independent_changes_are_all_reported() {
        let a = parse("SELECT sales, day FROM t WHERE cty = 'USA' AND y = 1").unwrap();
        let b = parse("SELECT costs, day FROM t WHERE cty = 'EUR' AND y = 1").unwrap();
        let changes = leaf_changes(&a, &b);
        assert_eq!(changes.len(), 2);
        assert!(changes.iter().all(|c| c.is_replacement()));
    }

    #[test]
    fn sibling_swap_reports_localised_changes() {
        let a = parse("SELECT a, b FROM t").unwrap();
        let b = parse("SELECT b, a FROM t").unwrap();
        let changes = leaf_changes(&a, &b);
        // An ordered matcher cannot "move" nodes; it reports the columns as changed in place
        // (either two replacements, or one anchor plus an insert/delete pair).
        assert!(!changes.is_empty() && changes.len() <= 2, "{changes:#?}");
    }

    #[test]
    fn lcs_matches_longest_anchor_sequence() {
        assert_eq!(
            lcs_pairs(&[1, 2, 3], &[1, 2, 3]),
            vec![(0, 0), (1, 1), (2, 2)]
        );
        assert_eq!(lcs_pairs(&[1, 9, 3], &[1, 3]), vec![(0, 0), (2, 1)]);
        assert_eq!(lcs_pairs(&[], &[1]), vec![]);
        assert_eq!(lcs_pairs(&[5, 1, 2], &[1, 2, 5]).len(), 2);
    }

    #[test]
    fn nested_subquery_changes_stay_local() {
        let a = parse("SELECT * FROM (SELECT a FROM T WHERE b > 10)").unwrap();
        let b = parse("SELECT * FROM (SELECT a FROM T WHERE b > 20)").unwrap();
        let changes = leaf_changes(&a, &b);
        assert_eq!(changes.len(), 1);
        // The path dives into the subquery: FROM -> SubqueryRef -> Select -> Where -> ...
        assert!(changes[0].path.depth() >= 5);
    }
}
