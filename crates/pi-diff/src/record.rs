//! The `diffs` table: records of subtree transformations between pairs of log queries.

use crate::align::{leaf_changes, LeafChange};
use pi_ast::{Node, Path, PrimitiveType, ReplaceError};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How the ancestor closure of leaf diffs is materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AncestorPolicy {
    /// Every proper ancestor of a leaf diff becomes a record (baseline behaviour, §4.2).
    Full,
    /// Least-common-ancestor pruning (§6.2): keep leaf diffs, LCAs of pairs of leaf diffs,
    /// and the whole-query (root) transformation — the "replace the entire AST" option the
    /// paper always keeps available (Figure 4's d3/d4).  Produces the same final interfaces
    /// as [`AncestorPolicy::Full`] at a fraction of the cost.
    #[default]
    LcaPruned,
}

/// The nature of a transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// A subtree is replaced by a different subtree.
    Replacement,
    /// A subtree is inserted (the `t1` side is null).
    Addition,
    /// A subtree is removed (the `t2` side is null).
    Deletion,
}

/// One row of the `diffs` table: `d = (q1, q2, p, t1, t2, type)` (paper Table 1).
///
/// The `(p, t1, t2)` payload lives in a shared [`TreeChange`] (`Arc`-allocated), reachable
/// through `Deref` — `record.path`, `record.before`, `record.after` and `record.is_leaf`
/// all read the shared payload.  Duplicate-collapsed mining mints one payload per distinct
/// tree pair and stamps it with `(q1, q2)` per log pair, so a record is 4 words and its
/// clone is a single refcount bump; subtree sides in turn alias the queries they came from
/// ([`Node`] is a copy-on-write handle), so nothing here ever deep-copies a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRecord {
    /// Index of the source query in the log.
    pub q1: usize,
    /// Index of the target query in the log.
    pub q2: usize,
    /// The index-free transformation, shared across every log pair it recurs in.
    change: Arc<TreeChange>,
}

impl std::ops::Deref for DiffRecord {
    type Target = TreeChange;

    fn deref(&self) -> &TreeChange {
        &self.change
    }
}

impl DiffRecord {
    /// Builds a record from an owned change (the payload is `Arc`-allocated here).
    pub fn new(q1: usize, q2: usize, change: TreeChange) -> Self {
        DiffRecord {
            q1,
            q2,
            change: Arc::new(change),
        }
    }

    /// Builds a record sharing an already-allocated change payload — the memoized mining
    /// path, where one alignment's changes are stamped with many `(q1, q2)` endpoints.
    pub fn from_shared(q1: usize, q2: usize, change: Arc<TreeChange>) -> Self {
        DiffRecord { q1, q2, change }
    }

    /// The shared index-free change payload.
    pub fn change(&self) -> &Arc<TreeChange> {
        &self.change
    }
    /// Whether the record replaces, adds, or removes a subtree.
    pub fn change_kind(&self) -> ChangeKind {
        match (&self.before, &self.after) {
            (Some(_), Some(_)) => ChangeKind::Replacement,
            (None, Some(_)) => ChangeKind::Addition,
            (Some(_), None) => ChangeKind::Deletion,
            (None, None) => unreachable!("a diff record must have at least one side"),
        }
    }

    /// The primitive type of the transformation (the `type` column of Table 1).
    ///
    /// Replacements take the join of both sides' types; additions and deletions are typed by
    /// whichever side exists.  Ancestor records are always `tree`.
    pub fn primitive(&self) -> PrimitiveType {
        if !self.is_leaf {
            return PrimitiveType::Tree;
        }
        match (&self.before, &self.after) {
            (Some(a), Some(b)) => a.primitive_type().join(b.primitive_type()),
            (Some(a), None) => a.primitive_type().join(PrimitiveType::Tree),
            (None, Some(b)) => b.primitive_type().join(PrimitiveType::Tree),
            (None, None) => PrimitiveType::Tree,
        }
    }

    /// Applies the transformation to a query: `d(q) = q'` (Example 4.2).
    pub fn apply(&self, q: &Node) -> Result<Node, ReplaceError> {
        match self.change_kind() {
            ChangeKind::Replacement => {
                let after = self.after.as_ref().expect("after side");
                q.replaced(&self.path, after.clone())
            }
            ChangeKind::Addition => {
                insert_subtree(q, &self.path, self.after.as_ref().expect("after side"))
            }
            ChangeKind::Deletion => q.removed(&self.path),
        }
    }

    /// Applies the inverse transformation: `d⁻¹(q') = q`.
    pub fn apply_inverse(&self, q: &Node) -> Result<Node, ReplaceError> {
        match self.change_kind() {
            ChangeKind::Replacement => {
                let before = self.before.as_ref().expect("before side");
                q.replaced(&self.path, before.clone())
            }
            ChangeKind::Deletion => {
                insert_subtree(q, &self.path, self.before.as_ref().expect("before side"))
            }
            ChangeKind::Addition => q.removed(&self.path),
        }
    }

    /// The subtrees this record contributes to a widget domain (both sides when present).
    pub fn domain_subtrees(&self) -> Vec<&Node> {
        self.before.iter().chain(self.after.iter()).collect()
    }

    /// A one-line human-readable summary, used by experiment output and debugging.
    pub fn summary(&self) -> String {
        let fmt_side = |side: &Option<Node>| match side {
            Some(n) => n.label(),
            None => "∅".to_string(),
        };
        format!(
            "{} @{}: {} → {} [{}]",
            match self.change_kind() {
                ChangeKind::Replacement => "repl",
                ChangeKind::Addition => "add ",
                ChangeKind::Deletion => "del ",
            },
            self.path,
            fmt_side(&self.before),
            fmt_side(&self.after),
            self.primitive()
        )
    }
}

/// Inserts `subtree` at `path` in `q`, shifting later siblings right.
///
/// Paths pointing one slot past the end of the parent's child list append; in-range paths
/// insert before the existing child, matching the source-coordinate convention of the aligner.
fn insert_subtree(q: &Node, path: &Path, subtree: &Node) -> Result<Node, ReplaceError> {
    q.inserted(path, subtree.clone())
}

/// Applies a set of *leaf* records (all extracted from the same query pair) to a query.
///
/// Record paths are expressed in the source query's coordinates, so applying them one by one
/// in arbitrary order can shift sibling indices out from under later records.  This helper
/// applies them in a safe order: replacements first (index-stable), then deletions from the
/// highest path down (so earlier removals cannot shift later ones), then additions from the
/// lowest path up (so earlier insertions create the slots later ones expect).
pub fn apply_leaf_changes(base: &Node, records: &[DiffRecord]) -> Result<Node, ReplaceError> {
    let mut out = base.clone();
    for record in records.iter().filter(|r| r.is_leaf) {
        if record.change_kind() == ChangeKind::Replacement {
            out = record.apply(&out)?;
        }
    }
    let mut deletions: Vec<&DiffRecord> = records
        .iter()
        .filter(|r| r.is_leaf && r.change_kind() == ChangeKind::Deletion)
        .collect();
    deletions.sort_by(|a, b| b.path.cmp(&a.path));
    for record in deletions {
        out = record.apply(&out)?;
    }
    let mut additions: Vec<&DiffRecord> = records
        .iter()
        .filter(|r| r.is_leaf && r.change_kind() == ChangeKind::Addition)
        .collect();
    additions.sort_by(|a, b| a.path.cmp(&b.path));
    for record in additions {
        out = record.apply(&out)?;
    }
    Ok(out)
}

/// One change of a pair alignment, *index-free*: a [`DiffRecord`] minus the `(q1, q2)` log
/// endpoints.
///
/// Alignment is purely structural — two structurally identical tree pairs produce identical
/// change lists wherever they sit in the log — so this is the unit worth memoizing per
/// distinct tree pair.  [`TreeChange::to_record`] re-wraps a memoized change into a
/// [`DiffRecord`] for a concrete `(q1, q2)` pair: a cheap per-occurrence step (a path clone
/// plus subtree refcount bumps), against the expensive once-per-distinct-pair alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeChange {
    /// Path of the transformed subtree (source-tree coordinates).
    pub path: Path,
    /// Subtree in the source tree; `None` for additions.
    pub before: Option<Node>,
    /// Subtree in the target tree; `None` for deletions.
    pub after: Option<Node>,
    /// True for a minimal changed subtree (leaf diff) rather than an ancestor record.
    pub is_leaf: bool,
}

impl TreeChange {
    /// Attaches log endpoints, producing the [`DiffRecord`] row for one concrete query pair
    /// (clones the change into a fresh shared payload; use [`DiffRecord::from_shared`]
    /// when the payload is already `Arc`-allocated).
    pub fn to_record(&self, q1: usize, q2: usize) -> DiffRecord {
        DiffRecord::new(q1, q2, self.clone())
    }
}

/// Builds the index-free change list between two trees, expanding (and optionally pruning)
/// ancestors — everything [`build_records`] computes except the log endpoints.
pub fn build_changes(a: &Node, b: &Node, policy: AncestorPolicy) -> Vec<TreeChange> {
    let leaves = leaf_changes(a, b);
    if leaves.is_empty() {
        return Vec::new();
    }

    let ancestor_paths = ancestor_paths(&leaves, policy);

    let mut out: Vec<TreeChange> = leaves
        .into_iter()
        .map(
            |LeafChange {
                 path,
                 before,
                 after,
             }| TreeChange {
                path,
                before,
                after,
                is_leaf: true,
            },
        )
        .collect();

    for path in ancestor_paths {
        // Skip ancestors that coincide with an existing leaf record (a root-level replacement
        // already *is* the whole-tree transformation).
        if out.iter().any(|d| d.is_leaf && d.path == path) {
            continue;
        }
        let (before, after) = (a.get(&path), b.get(&path));
        // Both sides must exist: an ancestor of a change always exists in the source tree, and
        // in the target tree unless sibling shifts moved it; such rare cases are simply skipped.
        if let (Some(before), Some(after)) = (before, after) {
            if before.same_tree(after) {
                continue;
            }
            out.push(TreeChange {
                path: path.clone(),
                before: Some(before.clone()),
                after: Some(after.clone()),
                is_leaf: false,
            });
        }
    }
    out
}

/// Builds the diff records between two queries, expanding (and optionally pruning) ancestors.
pub fn build_records(
    a: &Node,
    b: &Node,
    q1_idx: usize,
    q2_idx: usize,
    policy: AncestorPolicy,
) -> Vec<DiffRecord> {
    build_changes(a, b, policy)
        .into_iter()
        .map(|change| DiffRecord::new(q1_idx, q2_idx, change))
        .collect()
}

/// Computes the set of ancestor paths to materialise for a set of leaf changes.
fn ancestor_paths(leaves: &[LeafChange], policy: AncestorPolicy) -> BTreeSet<Path> {
    let leaf_paths: Vec<&Path> = leaves.iter().map(|l| &l.path).collect();
    let mut out = BTreeSet::new();
    match policy {
        AncestorPolicy::Full => {
            for path in &leaf_paths {
                let mut cur = (*path).clone();
                while let Some(parent) = cur.parent() {
                    out.insert(parent.clone());
                    cur = parent;
                }
            }
        }
        AncestorPolicy::LcaPruned => {
            // The whole-query transformation is always a viable interaction (Figure 4).
            out.insert(Path::root());
            // Keep paths that are the least common ancestor of at least two leaf diffs.
            for i in 0..leaf_paths.len() {
                for j in (i + 1)..leaf_paths.len() {
                    let lca = leaf_paths[i].common_prefix(leaf_paths[j]);
                    // The LCA of a path with itself (duplicate paths) adds nothing useful.
                    if &lca != leaf_paths[i] && &lca != leaf_paths[j] {
                        out.insert(lca);
                    } else if leaf_paths[i] == leaf_paths[j] {
                        continue;
                    } else {
                        out.insert(lca);
                    }
                }
            }
        }
    }
    // Leaf paths themselves are emitted as leaf records, not ancestors.
    for p in leaf_paths {
        out.remove(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    #[test]
    fn change_kind_covers_all_shapes() {
        let n = Node::int(1);
        let change = |before: Option<Node>, after: Option<Node>| TreeChange {
            path: Path::root(),
            before,
            after,
            is_leaf: true,
        };
        let repl = DiffRecord::new(0, 1, change(Some(n.clone()), Some(Node::int(2))));
        assert_eq!(repl.change_kind(), ChangeKind::Replacement);
        let add = DiffRecord::new(0, 1, change(None, Some(n.clone())));
        assert_eq!(add.change_kind(), ChangeKind::Addition);
        let del = DiffRecord::new(0, 1, change(Some(n), None));
        assert_eq!(del.change_kind(), ChangeKind::Deletion);
        // Records sharing one payload are equal to records owning an identical one.
        let shared = DiffRecord::from_shared(0, 1, std::sync::Arc::clone(repl.change()));
        assert_eq!(shared, repl);
    }

    #[test]
    fn ancestor_records_are_tree_typed() {
        let a = parse("SELECT sales FROM t WHERE cty = 'USA'").unwrap();
        let b = parse("SELECT costs FROM t WHERE cty = 'EUR'").unwrap();
        let records = build_records(&a, &b, 0, 1, AncestorPolicy::Full);
        for r in records.iter().filter(|r| !r.is_leaf) {
            assert_eq!(r.primitive(), PrimitiveType::Tree);
            assert_eq!(r.change_kind(), ChangeKind::Replacement);
        }
    }

    #[test]
    fn lca_pruning_keeps_only_lcas() {
        let a = parse("SELECT sales FROM t WHERE cty = 'USA'").unwrap();
        let b = parse("SELECT costs FROM t WHERE cty = 'EUR'").unwrap();
        let records = build_records(&a, &b, 0, 1, AncestorPolicy::LcaPruned);
        let ancestors: Vec<&DiffRecord> = records.iter().filter(|r| !r.is_leaf).collect();
        // Exactly one ancestor: the root, the LCA of the projection change and the predicate
        // change.
        assert_eq!(ancestors.len(), 1);
        assert!(ancestors[0].path.is_root());
    }

    #[test]
    fn single_leaf_change_keeps_only_the_leaf_and_the_root_under_pruning() {
        let a = parse("SELECT a FROM t WHERE x = 1").unwrap();
        let b = parse("SELECT a FROM t WHERE x = 2").unwrap();
        let records = build_records(&a, &b, 0, 1, AncestorPolicy::LcaPruned);
        // The leaf itself plus the whole-query transformation; the intermediate Where/BiExpr
        // ancestors are pruned.
        assert_eq!(records.len(), 2);
        assert_eq!(records.iter().filter(|r| r.is_leaf).count(), 1);
        assert!(records.iter().any(|r| !r.is_leaf && r.path.is_root()));
        let full = build_records(&a, &b, 0, 1, AncestorPolicy::Full);
        assert!(full.len() > records.len());
    }

    #[test]
    fn addition_apply_inserts_and_inverse_removes() {
        let a = parse("SELECT a, c FROM t").unwrap();
        let b = parse("SELECT a, b, c FROM t").unwrap();
        let records = build_records(&a, &b, 0, 1, AncestorPolicy::LcaPruned);
        let add = records
            .iter()
            .find(|r| r.change_kind() == ChangeKind::Addition)
            .unwrap();
        let applied = add.apply(&a).unwrap();
        assert_eq!(applied, b);
        let undone = add.apply_inverse(&applied).unwrap();
        assert_eq!(undone, a);
    }

    #[test]
    fn summary_is_informative() {
        let a = parse("SELECT a FROM t WHERE x = 1").unwrap();
        let b = parse("SELECT a FROM t WHERE x = 2").unwrap();
        let records = build_records(&a, &b, 3, 4, AncestorPolicy::LcaPruned);
        let s = records[0].summary();
        assert!(s.contains("repl"));
        assert!(s.contains("1"));
        assert!(s.contains("2"));
        assert!(s.contains("num"));
    }

    #[test]
    fn domain_subtrees_returns_both_sides() {
        let a = parse("SELECT a FROM t WHERE x = 1").unwrap();
        let b = parse("SELECT a FROM t WHERE x = 2").unwrap();
        let records = build_records(&a, &b, 0, 1, AncestorPolicy::LcaPruned);
        assert_eq!(records[0].domain_subtrees().len(), 2);
    }
}
