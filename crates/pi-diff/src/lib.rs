//! # pi-diff — subtree differences between query ASTs
//!
//! Interactions in Precision Interfaces are modelled as *subtree transformations* between pairs
//! of queries (paper §4.2).  Given two ASTs `q1` and `q2`, this crate produces the `diffs`
//! table: records `d = (p, t1, t2)` where `p` is the path of the changed subtree, `t1` is the
//! subtree in `q1` and `t2` the subtree in `q2` (either side may be absent for additions and
//! deletions).  Each record can be interpreted as a function `d(q) = q'` that replaces the
//! subtree rooted at `p`.
//!
//! Two kinds of records are produced:
//!
//! * **leaf diffs** — the minimally-sized changed subtrees found by ordered tree matching
//!   (preserving ancestor and left-to-right sibling relationships, like the matching algorithm
//!   referenced in the paper), and
//! * **ancestor diffs** — every ancestor of a changed subtree is itself a valid transformation
//!   (replacing a bigger region, up to the whole query).
//!
//! The ancestor set can be pruned with **LCA pruning** (paper §6.2): only leaf diffs and least
//! common ancestors of two leaf diffs can ever matter to the widget mapper, because a non-LCA
//! ancestor expresses exactly the same edges as its child at strictly higher widget cost.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod align;
pub mod codec;
mod record;
mod store;

pub use align::{diff_trees, leaf_changes, LeafChange};
pub use record::{apply_leaf_changes, AncestorPolicy, ChangeKind, DiffRecord, TreeChange};
pub use store::{DiffId, DiffStore};

use pi_ast::Node;

/// Extracts the full set of diff records between two queries.
///
/// `q1_idx` / `q2_idx` are the positions of the two queries in the log (they become the `q1`,
/// `q2` columns of the diffs table).  `policy` selects between the full ancestor closure and
/// LCA pruning.
pub fn extract_diffs(
    a: &Node,
    b: &Node,
    q1_idx: usize,
    q2_idx: usize,
    policy: AncestorPolicy,
) -> Vec<DiffRecord> {
    record::build_records(a, b, q1_idx, q2_idx, policy)
}

/// Extracts the *index-free* change list between two trees: exactly the [`extract_diffs`]
/// records minus the `(q1, q2)` endpoints, which [`TreeChange::to_record`] re-attaches.
///
/// This is the memoizable unit of pair mining — alignment depends only on tree structure, so
/// one change list serves every log pair whose members are structurally identical to
/// `(a, b)`.  The invariant the memoized graph builder relies on (and property tests pin):
/// for all `i`, `j`,
/// `extract_changes(a, b, p).iter().map(|c| c.to_record(i, j)) == extract_diffs(a, b, i, j, p)`.
pub fn extract_changes(a: &Node, b: &Node, policy: AncestorPolicy) -> Vec<TreeChange> {
    record::build_changes(a, b, policy)
}

/// Estimated cost of aligning two trees with `a_nodes` and `b_nodes` nodes, in abstract
/// *node-op units*.
///
/// The matcher descends top-down with hash short-circuits, but its worst case — and, for
/// trees that actually differ, its typical shape around the changed regions — is the LCS
/// over child sequences, which is bounded by the product of the subtree sizes.  The product
/// is therefore the scheduler's load-balancing proxy: cheap to compute (two cached node
/// counts and a multiply), monotone in both inputs, and proportional enough that blocks of
/// equal estimated cost take comparable wall-clock time.  One unit corresponds to a few
/// nanoseconds of alignment work on current hardware; consumers that need an absolute
/// threshold calibrate against a measured workload (see `pi-graph`'s parallel gate).
pub fn align_cost_model(a_nodes: usize, b_nodes: usize) -> u64 {
    (a_nodes as u64).saturating_mul(b_nodes as u64)
}

/// [`align_cost_model`] with the node counts measured on the spot.
///
/// [`Node::size`] walks each tree (`O(n)` per call), so hot paths should count nodes once,
/// cache them, and call [`align_cost_model`] directly — this wrapper exists for one-off
/// estimates.
pub fn estimated_align_cost(a: &Node, b: &Node) -> u64 {
    align_cost_model(a.size(), b.size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_ast::{Node, NodeKind, Path};

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn fig3_queries() -> (Node, Node) {
        // Figure 3: the two queries differ in the second projection (sales -> costs) and the
        // constant of the equality predicate (USA -> EUR).
        let q1 = parse("SELECT day, sales FROM t WHERE cty = 'USA'").unwrap();
        let q2 = parse("SELECT day, costs FROM t WHERE cty = 'EUR'").unwrap();
        (q1, q2)
    }

    #[test]
    fn table1_leaf_and_ancestor_records() {
        let (q1, q2) = fig3_queries();
        let diffs = extract_diffs(&q1, &q2, 1, 2, AncestorPolicy::Full);

        // Two leaf diffs: the ColExpr swap and the StrExpr swap (both `str`-typed), plus
        // ancestor records for the projection clause, the predicate, and the whole query.
        let leaves: Vec<_> = diffs.iter().filter(|d| d.is_leaf).collect();
        assert_eq!(leaves.len(), 2, "{diffs:#?}");
        assert!(leaves
            .iter()
            .all(|d| d.primitive() == pi_ast::PrimitiveType::Str));

        let col = leaves
            .iter()
            .find(|d| d.before.as_ref().unwrap().kind() == NodeKind::ColExpr)
            .unwrap();
        assert_eq!(col.before.as_ref().unwrap().attr_str("name"), Some("sales"));
        assert_eq!(col.after.as_ref().unwrap().attr_str("name"), Some("costs"));
        assert_eq!(col.path, "0/1/0".parse::<Path>().unwrap());

        let lit = leaves
            .iter()
            .find(|d| d.before.as_ref().unwrap().kind() == NodeKind::StrExpr)
            .unwrap();
        assert_eq!(lit.before.as_ref().unwrap().attr_str("value"), Some("USA"));
        assert_eq!(lit.after.as_ref().unwrap().attr_str("value"), Some("EUR"));

        // Ancestors include the root (the whole-query replacement a toggle button would use).
        assert!(diffs.iter().any(|d| d.path.is_root() && !d.is_leaf));
        // All records carry the query endpoints.
        assert!(diffs.iter().all(|d| d.q1 == 1 && d.q2 == 2));
    }

    #[test]
    fn lca_pruning_drops_single_child_ancestors() {
        let (q1, q2) = fig3_queries();
        let full = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::Full);
        let pruned = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::LcaPruned);
        assert!(pruned.len() < full.len());
        // Leaf diffs are always preserved.
        assert_eq!(
            pruned.iter().filter(|d| d.is_leaf).count(),
            full.iter().filter(|d| d.is_leaf).count()
        );
        // The root is the LCA of the two leaf diffs, so it must be retained.
        assert!(pruned.iter().any(|d| d.path.is_root()));
        // The BiExpr ancestor of only the StrExpr change must be pruned (Example 6.1).
        assert!(!pruned.iter().any(|d| {
            !d.is_leaf
                && d.before
                    .as_ref()
                    .map(|n| n.kind() == NodeKind::BiExpr)
                    .unwrap_or(false)
        }));
    }

    #[test]
    fn identical_queries_produce_no_diffs() {
        let q = parse("SELECT a FROM t WHERE b = 1").unwrap();
        assert!(extract_diffs(&q, &q, 0, 0, AncestorPolicy::Full).is_empty());
    }

    #[test]
    fn addition_of_top_clause_is_an_insert() {
        // Listing 6: a TOP clause is added.
        let q1 = parse("SELECT g.objID FROM Galaxy AS g WHERE d = 1").unwrap();
        let q2 = parse("SELECT TOP 1 g.objID FROM Galaxy AS g WHERE d = 1").unwrap();
        let diffs = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::Full);
        let add = diffs
            .iter()
            .find(|d| d.change_kind() == ChangeKind::Addition)
            .expect("an addition record");
        assert!(add.before.is_none());
        assert_eq!(add.after.as_ref().unwrap().kind(), NodeKind::Limit);
    }

    #[test]
    fn deletion_of_aggregation_is_a_delete() {
        // Listing 2: q1 -> q2 removes the COUNT(Delay) projection.
        let q1 = parse("SELECT COUNT(Delay), DestState FROM ontime GROUP BY DestState").unwrap();
        let q2 = parse("SELECT DestState FROM ontime GROUP BY DestState").unwrap();
        let diffs = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::Full);
        let del = diffs
            .iter()
            .find(|d| d.change_kind() == ChangeKind::Deletion)
            .expect("a deletion record");
        assert!(del.after.is_none());
        assert_eq!(del.before.as_ref().unwrap().kind(), NodeKind::ProjClause);
    }

    #[test]
    fn numeric_changes_are_num_typed() {
        let q1 = parse("SELECT DestState FROM ontime WHERE Month = 9").unwrap();
        let q2 = parse("SELECT DestState FROM ontime WHERE Month = 8").unwrap();
        let diffs = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::LcaPruned);
        let leaf = diffs.iter().find(|d| d.is_leaf).unwrap();
        assert_eq!(leaf.primitive(), pi_ast::PrimitiveType::Num);
        assert_eq!(leaf.before.as_ref().unwrap().numeric_value(), Some(9.0));
        assert_eq!(leaf.after.as_ref().unwrap().numeric_value(), Some(8.0));
    }

    #[test]
    fn subquery_swap_is_a_tree_typed_change() {
        // Listing 7: the FROM relation toggles between a table and a subquery.
        let q1 = parse("SELECT * FROM T").unwrap();
        let q2 = parse("SELECT * FROM (SELECT a FROM T WHERE b > 10)").unwrap();
        let diffs = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::LcaPruned);
        let leaf = diffs.iter().find(|d| d.is_leaf).unwrap();
        assert_eq!(leaf.primitive(), pi_ast::PrimitiveType::Tree);
        assert_eq!(leaf.path, "1/0".parse::<Path>().unwrap());
    }

    #[test]
    fn applying_a_diff_transforms_q1_into_q2() {
        let q1 = parse("SELECT DestState FROM ontime WHERE Month = 9").unwrap();
        let q2 = parse("SELECT DestState FROM ontime WHERE Month = 8").unwrap();
        let diffs = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::Full);
        // Applying every leaf diff to q1 must yield q2 (the d(q)=q' semantics of §4.2).
        let mut q = q1.clone();
        for d in diffs.iter().filter(|d| d.is_leaf) {
            q = d.apply(&q).unwrap();
        }
        assert_eq!(q, q2);
        // And the inverse recovers q1.
        let mut back = q2;
        for d in diffs.iter().filter(|d| d.is_leaf).rev() {
            back = d.apply_inverse(&back).unwrap();
        }
        assert_eq!(back, q1);
    }
}
