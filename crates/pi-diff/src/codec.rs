//! Snapshot codec for the diff layer: change payloads and the [`DiffStore`].
//!
//! A mined session's diff state is dominated by *shared* [`TreeChange`] payloads — the
//! memoized mining path stamps one `Arc`-allocated change list onto every log pair it
//! recurs in.  The codec preserves that sharing on disk and on restore:
//!
//! * [`ChangeTableBuilder`] collects the distinct change payloads referenced by a snapshot
//!   into one table, deduplicating first by `Arc` pointer identity (the common case: a
//!   payload shared between a store record and a memo entry is interned once for free) and
//!   then by content, so even a memo-off build — which allocates a fresh payload per log
//!   pair — snapshots each distinct change once.
//! * [`read_change_table`] rebuilds the payloads as shared `Arc`s against an
//!   already-restored node table, so every [`DiffRecord`] and memo entry restored from the
//!   snapshot aliases one allocation per distinct change.
//! * [`write_diff_store`] / [`read_diff_store`] serialize the record arena itself as
//!   `(q1, q2, change-index)` triples — ids are positional, so `DiffId` offsets restore
//!   byte-identically by construction.

use crate::record::{DiffRecord, TreeChange};
use crate::store::DiffStore;
use pi_ast::codec::{
    corrupt, put_path, put_u8, put_varint, take_count, take_path, take_u8, take_varint, CodecError,
    NodeTableBuilder,
};
use pi_ast::Node;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;

/// Content key of a change payload after node interning: `(before, after, is_leaf, path)`.
type ChangeKey = (Option<u32>, Option<u32>, bool, Vec<usize>);

/// Builds the deduplicated table of distinct [`TreeChange`] payloads referenced by a
/// snapshot.
///
/// Two-phase like [`NodeTableBuilder`]: sections intern their payloads first (interning a
/// change also interns its `before`/`after` subtrees into the node table), then the table
/// is written once with [`ChangeTableBuilder::write_to`] and sections refer to changes by
/// `u32` index.
#[derive(Debug, Default)]
pub struct ChangeTableBuilder {
    /// `Arc` pointer → index: free dedup for payloads that are physically shared.
    by_ptr: HashMap<*const TreeChange, u32>,
    /// Content → index: collapses structurally identical payloads that were allocated
    /// separately (the memo-off mining path).
    by_content: HashMap<ChangeKey, u32>,
    /// Distinct payloads with their interned node indices, in emission order.
    entries: Vec<(Arc<TreeChange>, Option<u32>, Option<u32>)>,
}

impl ChangeTableBuilder {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct change payloads interned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no payload has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Interns a change payload (and its subtrees, into `nodes`), returning its table
    /// index.  Idempotent by pointer and by content.
    pub fn intern(&mut self, change: &Arc<TreeChange>, nodes: &mut NodeTableBuilder) -> u32 {
        let ptr = Arc::as_ptr(change);
        if let Some(&idx) = self.by_ptr.get(&ptr) {
            return idx;
        }
        let before = change.before.as_ref().map(|n| nodes.intern(n));
        let after = change.after.as_ref().map(|n| nodes.intern(n));
        let key: ChangeKey = (before, after, change.is_leaf, change.path.steps().to_vec());
        if let Some(&idx) = self.by_content.get(&key) {
            self.by_ptr.insert(ptr, idx);
            return idx;
        }
        let idx = u32::try_from(self.entries.len()).expect("fewer than 2^32 distinct changes");
        self.by_ptr.insert(ptr, idx);
        self.by_content.insert(key, idx);
        self.entries.push((change.clone(), before, after));
        idx
    }

    /// Writes the table: a varint count, then per entry the path, a presence/leaf flag
    /// byte and the optional `before`/`after` node-table indices.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        put_varint(w, self.entries.len() as u64)?;
        for (change, before, after) in &self.entries {
            put_path(w, &change.path)?;
            let flags = u8::from(before.is_some())
                | (u8::from(after.is_some()) << 1)
                | (u8::from(change.is_leaf) << 2);
            put_u8(w, flags)?;
            if let Some(idx) = before {
                put_varint(w, u64::from(*idx))?;
            }
            if let Some(idx) = after {
                put_varint(w, u64::from(*idx))?;
            }
        }
        Ok(())
    }
}

/// Reads a change table written by [`ChangeTableBuilder::write_to`], resolving node
/// indices against an already-restored node table.
pub fn read_change_table<R: Read>(
    r: &mut R,
    nodes: &[Node],
) -> Result<Vec<Arc<TreeChange>>, CodecError> {
    let count = take_count(r)?;
    let mut changes = Vec::with_capacity(count.min(1 << 16));
    let node_at = |idx: u64| -> Result<Node, CodecError> {
        nodes
            .get(usize::try_from(idx).map_err(|_| corrupt("node index overflow"))?)
            .cloned()
            .ok_or_else(|| corrupt(format!("change references missing node {idx}")))
    };
    for _ in 0..count {
        let path = take_path(r)?;
        let flags = take_u8(r)?;
        if flags & !0b111 != 0 {
            return Err(corrupt(format!("invalid change flag byte {flags:#x}")));
        }
        let before = if flags & 0b001 != 0 {
            Some(node_at(take_varint(r)?)?)
        } else {
            None
        };
        let after = if flags & 0b010 != 0 {
            Some(node_at(take_varint(r)?)?)
        } else {
            None
        };
        changes.push(Arc::new(TreeChange {
            path,
            before,
            after,
            is_leaf: flags & 0b100 != 0,
        }));
    }
    Ok(changes)
}

/// Writes a [`DiffStore`] as `(q1, q2, change-index)` triples in id order.  Every payload
/// must already be interned in `changes` (the caller's pre-pass guarantees it; interning
/// again here is an idempotent lookup).
pub fn write_diff_store<W: Write>(
    w: &mut W,
    store: &DiffStore,
    changes: &mut ChangeTableBuilder,
    nodes: &mut NodeTableBuilder,
) -> Result<(), CodecError> {
    put_varint(w, store.len() as u64)?;
    for (_, record) in store.iter() {
        put_varint(w, record.q1 as u64)?;
        put_varint(w, record.q2 as u64)?;
        put_varint(w, u64::from(changes.intern(record.change(), nodes)))?;
    }
    Ok(())
}

/// Reads a [`DiffStore`] written by [`write_diff_store`], re-sharing change payloads from
/// the restored change table — `DiffId`s are positional, so offsets restore exactly.
pub fn read_diff_store<R: Read>(
    r: &mut R,
    changes: &[Arc<TreeChange>],
) -> Result<DiffStore, CodecError> {
    let count = take_count(r)?;
    let mut store = DiffStore::new();
    for _ in 0..count {
        let q1 = take_varint(r)? as usize;
        let q2 = take_varint(r)? as usize;
        let idx = take_varint(r)? as usize;
        let change = changes
            .get(idx)
            .ok_or_else(|| corrupt(format!("record references missing change {idx}")))?;
        store.push(DiffRecord::from_shared(q1, q2, change.clone()));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AncestorPolicy;
    use pi_ast::codec::read_node_table;
    use pi_ast::Frontend as _;

    fn parse(sql: &str) -> Node {
        pi_sql::SqlFrontend.parse_one(sql).unwrap()
    }

    fn sample_store() -> DiffStore {
        let a = parse("SELECT sales FROM t WHERE cty = 'USA'");
        let b = parse("SELECT costs FROM t WHERE cty = 'EUR'");
        let c = parse("SELECT costs FROM t WHERE cty = 'CHN'");
        let mut store = DiffStore::new();
        store.extend(crate::extract_diffs(
            &a,
            &b,
            0,
            1,
            AncestorPolicy::LcaPruned,
        ));
        store.extend(crate::extract_diffs(
            &b,
            &c,
            1,
            2,
            AncestorPolicy::LcaPruned,
        ));
        // Duplicate pair at new endpoints: separately-allocated but structurally identical
        // payloads, exercising the content-dedup tier.
        store.extend(crate::extract_diffs(
            &a,
            &b,
            3,
            4,
            AncestorPolicy::LcaPruned,
        ));
        store
    }

    #[test]
    fn store_round_trips_and_dedups_repeated_changes() {
        let store = sample_store();
        let mut nodes = NodeTableBuilder::new();
        let mut changes = ChangeTableBuilder::new();
        for (_, record) in store.iter() {
            changes.intern(record.change(), &mut nodes);
        }
        // The (a, b) pair appears twice with fresh allocations; content dedup must fold it.
        assert!(changes.len() < store.len());

        let mut node_buf = Vec::new();
        nodes.write_to(&mut node_buf).unwrap();
        let mut change_buf = Vec::new();
        changes.write_to(&mut change_buf).unwrap();
        let mut store_buf = Vec::new();
        write_diff_store(&mut store_buf, &store, &mut changes, &mut nodes).unwrap();

        let restored_nodes = read_node_table(&mut node_buf.as_slice()).unwrap();
        let restored_changes =
            read_change_table(&mut change_buf.as_slice(), &restored_nodes).unwrap();
        let restored = read_diff_store(&mut store_buf.as_slice(), &restored_changes).unwrap();
        assert_eq!(restored, store);
        // Restored records share payloads: the duplicate pair aliases one allocation.
        let first = restored.get(crate::DiffId(0));
        let dup = restored
            .iter()
            .find(|(id, r)| id.0 > 0 && r.q1 == 3 && r.change() == first.change())
            .map(|(_, r)| r);
        if let Some(dup) = dup {
            assert!(Arc::ptr_eq(first.change(), dup.change()));
        }
    }

    #[test]
    fn corrupt_change_indices_err_cleanly() {
        let store = sample_store();
        let mut nodes = NodeTableBuilder::new();
        let mut changes = ChangeTableBuilder::new();
        let mut store_buf = Vec::new();
        write_diff_store(&mut store_buf, &store, &mut changes, &mut nodes).unwrap();
        // An empty change table makes every record's change index dangle.
        assert!(read_diff_store(&mut store_buf.as_slice(), &[]).is_err());
        // Truncations fail cleanly at every prefix length.
        let mut node_buf = Vec::new();
        nodes.write_to(&mut node_buf).unwrap();
        let restored_nodes = read_node_table(&mut node_buf.as_slice()).unwrap();
        let mut change_buf = Vec::new();
        changes.write_to(&mut change_buf).unwrap();
        for len in 0..change_buf.len() {
            assert!(read_change_table(&mut change_buf[..len].as_ref(), &restored_nodes).is_err());
        }
    }
}
