//! An arena of diff records shared by the interaction graph and the widget mapper.
//!
//! The paper notes that the `diffs` table is *logical* and need not be materialised in full;
//! in practice the interaction graph references diff records by id, and the mapper groups
//! those ids by path, so a simple append-only arena with by-id lookup is all that is needed.

use crate::record::DiffRecord;
use pi_ast::Path;
use std::collections::BTreeMap;

/// Identifier of a diff record inside a [`DiffStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiffId(pub usize);

impl std::fmt::Display for DiffId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Append-only arena of diff records.
///
/// Append-only is a load-bearing property, not an implementation detail: once a record is
/// pushed, its [`DiffId`] is stable forever.  Incremental graph construction leans on this —
/// a streaming session keeps appending to one store across pushes, and every snapshot sees
/// the same ids a batch build of the same prefix would have assigned.
///
/// Equality compares record contents in id order — two stores are equal exactly when every
/// `DiffId` resolves to the same record in both.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DiffStore {
    records: Vec<DiffRecord>,
}

impl DiffStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with room for `records` appends — bulk rehydration knows its
    /// exact record count up front and should not pay reallocation churn.
    pub fn with_capacity(records: usize) -> Self {
        Self {
            records: Vec::with_capacity(records),
        }
    }

    /// The id the *next* pushed record will receive.
    ///
    /// Because the store is append-only this is also the offset at which another store's
    /// records would land if appended — the key to merging per-shard stores with stable id
    /// translation.
    pub fn next_id(&self) -> DiffId {
        DiffId(self.records.len())
    }

    /// Adds a record and returns its id.
    pub fn push(&mut self, record: DiffRecord) -> DiffId {
        let id = self.next_id();
        self.records.push(record);
        id
    }

    /// Adds many records, returning their ids in order.
    pub fn extend<I: IntoIterator<Item = DiffRecord>>(&mut self, records: I) -> Vec<DiffId> {
        records.into_iter().map(|r| self.push(r)).collect()
    }

    /// Appends every record of `other` to this store, returning the offset its ids moved by:
    /// `other`'s record `DiffId(k)` is this store's `DiffId(offset + k)` afterwards.
    /// Record subtrees are `Arc`-shared, so this moves pointers, never trees.
    ///
    /// The offset is the caller's rebasing key: any `DiffId` captured against `other` (edge
    /// labels, widget `init_diffs`) must be shifted by it before use against `self` — this
    /// method moves records only, it cannot see the structures that reference them.
    pub fn append(&mut self, other: DiffStore) -> usize {
        let offset = self.records.len();
        self.records.extend(other.records);
        offset
    }

    /// Looks up a record.
    pub fn get(&self, id: DiffId) -> &DiffRecord {
        &self.records[id.0]
    }

    /// Number of records in the store.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DiffId, &DiffRecord)> {
        self.records.iter().enumerate().map(|(i, r)| (DiffId(i), r))
    }

    /// Estimated heap bytes retained by the record arena: the per-record row (endpoints
    /// plus the shared-payload pointer) and an amortised share of the `Arc`-allocated
    /// change payloads.  Payload subtrees are excluded — they alias the distinct-tree
    /// arena, which accounts for them once.  O(1); estimates are documented on the
    /// constant, not measured, so the figure is stable across allocators.
    pub fn footprint_bytes(&self) -> usize {
        /// Amortised bytes per record: the `DiffRecord` row itself (two endpoints plus the
        /// payload pointer, 24 bytes) and a small share of the shared
        /// [`TreeChange`](crate::TreeChange) header.  Repetitive logs stamp each distinct
        /// pair's memoized payload into many records (`DiffRecord::from_shared`), so the
        /// header's full cost sits with the *distinct* entry — priced by the memo's own
        /// footprint — and each aliasing record carries only this amortised slice.
        const RECORD_FOOTPRINT_ESTIMATE: usize = 32;
        self.records.len() * RECORD_FOOTPRINT_ESTIMATE
    }

    /// Number of distinct paths across all records — the partition count of
    /// [`DiffStore::partition_by_path`] without materialising the partition.  Stats gauges
    /// poll this at trace scale (tens of millions of records), so it hashes path
    /// *references* instead of cloning every path into a map.
    pub fn distinct_paths(&self) -> usize {
        self.records
            .iter()
            .map(|r| &r.path)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Groups record ids by path — the partition `W_p` used by the mapper's initialisation
    /// (Algorithm 1, line 3).
    pub fn partition_by_path(&self) -> BTreeMap<Path, Vec<DiffId>> {
        let mut out: BTreeMap<Path, Vec<DiffId>> = BTreeMap::new();
        for (id, record) in self.iter() {
            out.entry(record.path.clone()).or_default().push(id);
        }
        out
    }

    /// All record ids whose record is a leaf diff.
    pub fn leaf_ids(&self) -> Vec<DiffId> {
        self.iter()
            .filter(|(_, r)| r.is_leaf)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{build_records, AncestorPolicy};
    use pi_ast::Frontend as _;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn populated_store() -> DiffStore {
        let mut store = DiffStore::new();
        let a = parse("SELECT sales FROM t WHERE cty = 'USA'").unwrap();
        let b = parse("SELECT costs FROM t WHERE cty = 'EUR'").unwrap();
        let c = parse("SELECT costs FROM t WHERE cty = 'CHN'").unwrap();
        store.extend(build_records(&a, &b, 0, 1, AncestorPolicy::Full));
        store.extend(build_records(&b, &c, 1, 2, AncestorPolicy::Full));
        store
    }

    #[test]
    fn push_and_get_round_trip() {
        let store = populated_store();
        assert!(!store.is_empty());
        for (id, record) in store.iter() {
            assert_eq!(store.get(id), record);
        }
    }

    #[test]
    fn partition_groups_by_path() {
        let store = populated_store();
        let partition = store.partition_by_path();
        let total: usize = partition.values().map(Vec::len).sum();
        assert_eq!(total, store.len());
        // The predicate literal path appears in both query pairs, so its partition has
        // records from both.
        let lit_partition = partition
            .iter()
            .find(|(p, _)| p.to_string() == "2/0/1")
            .map(|(_, ids)| ids.clone())
            .expect("literal path partition");
        let qs: std::collections::BTreeSet<usize> =
            lit_partition.iter().map(|id| store.get(*id).q1).collect();
        assert_eq!(qs.len(), 2);
    }

    #[test]
    fn leaf_ids_only_returns_leaves() {
        let store = populated_store();
        let leaves = store.leaf_ids();
        assert!(!leaves.is_empty());
        assert!(leaves.iter().all(|id| store.get(*id).is_leaf));
        assert!(leaves.len() < store.len());
    }

    #[test]
    fn append_offsets_ids_stably() {
        let mut left = populated_store();
        let right = populated_store();
        let before = left.len();
        assert_eq!(left.next_id(), DiffId(before));
        let offset = left.append(right.clone());
        assert_eq!(offset, before);
        assert_eq!(left.len(), before + right.len());
        for (id, record) in right.iter() {
            assert_eq!(left.get(DiffId(offset + id.0)), record);
        }
        // Pre-existing ids are untouched.
        for (id, record) in populated_store().iter() {
            assert_eq!(left.get(id), record);
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let store = populated_store();
        let ids: Vec<usize> = store.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, (0..store.len()).collect::<Vec<_>>());
        assert_eq!(DiffId(3).to_string(), "d3");
    }
}
