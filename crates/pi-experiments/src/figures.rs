//! One function per table / figure of the paper's evaluation.

use crate::ExperimentReport;
use pi_ast::Frontend as _;
use pi_core::precision::{closure_precision, filtered_closure, SchemaMap};
use pi_core::recall::{cross_recall, holdout_recall, recall_curve, split_log};
use pi_core::{PiOptions, PrecisionInterfaces};
use pi_diff::{extract_diffs, AncestorPolicy};
use pi_graph::WindowStrategy;
use pi_study::{
    group_times, one_way_anova, run_study, summarize, summarize_by_order, Condition, StudyConfig,
};
use pi_widgets::fit::fit_cost;
use pi_widgets::{CostFunction, WidgetType};
use pi_workloads::{adhoc, mix, olap, sdss, traces, QueryLog};
use std::time::Instant;

/// The schema used by the precision experiments: the SDSS subset plus OnTime.
fn schema_map() -> SchemaMap {
    let mut schema = SchemaMap::new();
    for (table, columns) in sdss::schema() {
        schema.add_table(table, columns.iter().copied());
    }
    for (table, columns) in olap::schema() {
        schema.add_table(table, columns.iter().copied());
    }
    schema
}

fn default_pipeline() -> PrecisionInterfaces {
    PrecisionInterfaces::default()
}

fn training_sizes() -> Vec<usize> {
    vec![1, 2, 5, 10, 20, 50, 100]
}

// ---------------------------------------------------------------------------- Table 1

/// Table 1: the `diffs` records for the two Figure 3 queries.
pub fn table1() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table1",
        "diffs records for the Figure 3 query pair",
        "two str-typed leaf records (ColExpr sales→costs @0/1/0, StrExpr USA→EUR) plus tree-typed ancestors",
    );
    let q1 = pi_sql::SqlFrontend
        .parse_one("SELECT day, sales FROM t WHERE cty = 'USA'")
        .unwrap();
    let q2 = pi_sql::SqlFrontend
        .parse_one("SELECT day, costs FROM t WHERE cty = 'EUR'")
        .unwrap();
    for record in extract_diffs(&q1, &q2, 1, 2, AncestorPolicy::Full) {
        report.push(format!(
            "q1=1 q2=2 p={:<8} {:<30} type={}",
            record.path.to_string(),
            record.summary(),
            record.primitive()
        ));
    }
    report
}

// ---------------------------------------------------------------------------- Example 4.4

/// Example 4.4: widget cost functions fitted from (simulated) timing traces.
pub fn cost_fit() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "cost-fit",
        "widget cost functions fitted from interaction timing traces",
        "c_dropdown(n) = 276 + 125·n + 0.07·n², c_textbox(n) = 4790; dropdown/textbox crossover near n≈35",
    );
    let sizes = traces::default_sizes();
    for ty in WidgetType::all() {
        let trace = traces::simulate_trace(ty, &sizes, 10, 42);
        let fitted = fit_cost(&trace);
        report.push(format!(
            "{:>13}: fitted c(n) = {:7.1} + {:6.2}·n + {:5.3}·n²   (c(3)={:6.0}ms, c(30)={:6.0}ms)",
            ty.to_string(),
            fitted.a0,
            fitted.a1,
            fitted.a2,
            fitted.eval(3),
            fitted.eval(30)
        ));
    }
    let dropdown = fit_cost(&traces::simulate_trace(
        WidgetType::Dropdown,
        &sizes,
        10,
        42,
    ));
    let crossover = dropdown.crossover_with(&CostFunction::paper_textbox());
    report.push(format!(
        "dropdown/textbox crossover at n = {:?} (paper: ≈ 34-36)",
        crossover
    ));
    report
}

// ---------------------------------------------------------------------------- Figure 5

/// Figure 5: the widget sets generated for the §7.1 example logs (Listings 4–7).
pub fn fig5() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "widgets mapped to the §7.1 example logs",
        "5a: dropdown+slider; 5b: one whole-query choice; 5c: per-component widgets; 5d: TOP toggle+slider; 5e: subquery toggle + inner widgets",
    );
    let cases: Vec<(&str, &str, PiOptions)> = vec![
        (
            "5a (Listing 4: parameter changes in a complex query)",
            "SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 3) WHERE cust = 'Alice' AND country = 'China' GROUP BY spec_ts;
             SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 5) WHERE cust = 'Bob' AND country = 'China' GROUP BY spec_ts;
             SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 9) WHERE cust = 'Carol' AND country = 'China' GROUP BY spec_ts;
             SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 7) WHERE cust = 'Alice' AND country = 'China' GROUP BY spec_ts;",
            PiOptions::default(),
        ),
        (
            "5b (Listing 5 left: three trivial queries)",
            "SELECT avg(a); SELECT count(b); SELECT count(c);",
            PiOptions {
                window: WindowStrategy::AllPairs,
                ..PiOptions::default()
            },
        ),
        (
            "5c (Listing 5 right: thirteen trivial queries)",
            "SELECT avg(a); SELECT count(b); SELECT count(c); SELECT avg(b); SELECT count(a);
             SELECT avg(c); SELECT avg(d); SELECT avg(e); SELECT count(d); SELECT count(e);
             SELECT count(b); SELECT count(c); SELECT avg(a);",
            PiOptions {
                window: WindowStrategy::AllPairs,
                ..PiOptions::default()
            },
        ),
        (
            "5d (Listing 6: TOP clause added then modified)",
            "SELECT g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;
             SELECT TOP 1 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;
             SELECT TOP 10 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;
             SELECT TOP 5 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;",
            PiOptions::default(),
        ),
        (
            "5e (Listing 7: subquery added then modified)",
            "SELECT * FROM T;
             SELECT * FROM (SELECT a FROM T WHERE b > 10);
             SELECT * FROM (SELECT a FROM T WHERE b > 20);
             SELECT * FROM (SELECT b FROM T WHERE b > 20);",
            PiOptions::default(),
        ),
    ];
    for (label, log, options) in cases {
        let generated = PrecisionInterfaces::new(options).from_sql_log(log).unwrap();
        report.push(format!("--- {label}"));
        for line in generated.interface.describe().lines() {
            report.push(line.to_string());
        }
        report.push(format!(
            "    expressiveness over the input log: {:.2}",
            generated.interface.expressiveness(&generated.queries)
        ));
    }
    report
}

// ---------------------------------------------------------------------------- Figure 6

/// Figure 6a: hold-out recall vs number of training queries for single-client SDSS logs.
pub fn fig6a() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6a",
        "recall vs training size, 9 single-client SDSS logs (200-query windows, 100 hold-out)",
        "≈10 training queries reach full recall for most clients, ~50 for the rest; one slow client whose literals keep changing",
    );
    let options = PiOptions::default();
    let sizes = training_sizes();
    report.push(format!("training sizes: {sizes:?}"));
    for (i, log) in sdss::client_logs(9, 200).iter().enumerate() {
        let curve = recall_curve(&log.queries, &sizes, 100, &options);
        let rendered: Vec<String> = curve
            .iter()
            .map(|p| format!("{}:{:.2}", p.training, p.recall))
            .collect();
        report.push(format!(
            "client C{:<2} [{:<18}]  {}",
            i + 1,
            log.label,
            rendered.join("  ")
        ));
    }
    report
}

/// Figure 6b: the interface generated for SDSS client C1.
pub fn fig6b() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6b",
        "widgets generated for SDSS client C1 (object lookups)",
        "widgets to change the table, the id attribute, and the numeric object id",
    );
    let log = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 0, 100);
    let generated = default_pipeline().from_queries(log.queries.clone());
    for line in generated.interface.describe().lines() {
        report.push(line.to_string());
    }
    report.push(format!(
        "expressiveness over the client log: {:.2}",
        generated.interface.expressiveness(&log.queries)
    ));
    report
}

/// Figure 6c: recall curves for the OLAP random-walk log and the ad-hoc exploration log.
pub fn fig6c() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6c",
        "recall vs training size: synthetic OLAP walk vs ad-hoc exploration",
        "OLAP recall climbs with ~100 training queries; ad-hoc recall stays low (≈20% at 100 training queries)",
    );
    let options = PiOptions::default();
    let sizes = training_sizes();
    let olap_log = olap::random_walk(1, 200);
    let olap_curve = recall_curve(&olap_log.queries, &sizes, 100, &options);
    report.push(format!(
        "OLAP   {}",
        olap_curve
            .iter()
            .map(|p| format!("{}:{:.2}", p.training, p.recall))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    // Average over three "students".
    let mut adhoc_points = vec![0.0; sizes.len()];
    let students = 3;
    for s in 0..students {
        let log = adhoc::exploration_log(s as u64, 200);
        let curve = recall_curve(&log.queries, &sizes, 100, &options);
        for (i, p) in curve.iter().enumerate() {
            adhoc_points[i] += p.recall / students as f64;
        }
    }
    report.push(format!(
        "ad-hoc {}",
        sizes
            .iter()
            .zip(adhoc_points)
            .map(|(n, r)| format!("{n}:{r:.2}"))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    report
}

/// Figure 6d: the interface generated from the first 100 OLAP queries.
pub fn fig6d() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6d",
        "widgets generated for the synthetic OLAP log (first 100 queries)",
        "choice widgets for the aggregation and grouping clauses, sliders for the predicate values",
    );
    let log = olap::random_walk(1, 100);
    let generated = default_pipeline().from_queries(log.queries.clone());
    for line in generated.interface.describe().lines() {
        report.push(line.to_string());
    }
    let numeric = generated
        .interface
        .widgets()
        .iter()
        .filter(|w| {
            matches!(
                w.ty,
                WidgetType::Slider | WidgetType::RangeSlider | WidgetType::Textbox
            )
        })
        .count();
    let choices = generated.interface.widgets().len() - numeric;
    report.push(format!(
        "{numeric} numeric widgets for predicate values, {choices} choice widgets for clause changes"
    ));
    report
}

// ---------------------------------------------------------------------------- Figure 7

fn multi_client_logs(m: usize, per_client: usize) -> Vec<QueryLog> {
    sdss::client_logs(m, per_client)
}

/// Figure 7a: multi-client recall as the *total* number of training queries grows.
pub fn fig7a() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7a",
        "multi-client SDSS recall vs total training queries (M interleaved clients, 50 hold-out)",
        "recall rises slowly with the total training budget because each client contributes few examples",
    );
    let options = PiOptions::default();
    let totals = [5usize, 10, 20, 40, 60, 100];
    for m in [1usize, 3, 5, 8] {
        let mixed = mix::interleave(&multi_client_logs(m, 200), m as u64);
        let split = split_log(&mixed.queries, 50);
        let mut line = format!("M={m}: ");
        for &total in &totals {
            let n = total.min(split.train.len());
            let (recall, _) = holdout_recall(&split.train[..n], split.holdout, &options);
            line.push_str(&format!("{total}:{recall:.2}  "));
        }
        report.push(line);
    }
    report
}

/// Figure 7b: multi-client recall as the number of training queries *per client* grows.
pub fn fig7b() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7b",
        "multi-client SDSS recall vs training queries per client",
        "recall rises rapidly once each client contributes a few dozen examples (each client alone is simple)",
    );
    let options = PiOptions::default();
    let per_client_sizes = [2usize, 5, 10, 20, 40];
    for m in [1usize, 3, 5, 8] {
        let logs = multi_client_logs(m, 200);
        // Hold out the tail of each client's log.
        let holdout: Vec<pi_ast::Node> = logs
            .iter()
            .flat_map(|l| l.queries[l.len() - 50 / m.max(1) - 1..].to_vec())
            .collect();
        let mut line = format!("M={m}: ");
        for &per_client in &per_client_sizes {
            let train = mix::interleave_prefixes(&logs, per_client, m as u64);
            let (recall, _) = holdout_recall(&train.queries, &holdout, &options);
            line.push_str(&format!("{per_client}/client:{recall:.2}  "));
        }
        report.push(line);
    }
    report
}

/// The pairwise cross-client recall matrix shared by Figures 7c, 9 and 10.
fn cross_client_matrix(clients: usize, per_client: usize) -> Vec<Vec<f64>> {
    let options = PiOptions::default();
    let logs = sdss::client_logs(clients, per_client);
    let mut matrix = vec![vec![0.0; clients]; clients];
    for (i, train) in logs.iter().enumerate() {
        for (j, other) in logs.iter().enumerate() {
            if i == j {
                matrix[i][j] = 1.0;
                continue;
            }
            matrix[i][j] = cross_recall(&train.queries, &other.queries, &options);
        }
    }
    matrix
}

/// Figure 7c: how many other clients each client's interface benefits (recall > 0.5).
pub fn fig7c() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7c",
        "cross-client benefit histogram (22 clients × 100 queries)",
        "most training clients benefit at least one other client; several benefit six or more",
    );
    let matrix = cross_client_matrix(22, 100);
    let mut histogram = std::collections::BTreeMap::new();
    for (i, row) in matrix.iter().enumerate() {
        let benefited = row
            .iter()
            .enumerate()
            .filter(|(j, recall)| *j != i && **recall > 0.5)
            .count();
        *histogram.entry(benefited).or_insert(0usize) += 1;
    }
    for (benefited, clients) in histogram {
        report.push(format!(
            "interfaces benefiting {benefited:>2} other clients: {clients} training clients"
        ));
    }
    report
}

/// Figure 9: the full pairwise recall matrix.
pub fn fig9() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig9",
        "pairwise cross-client recall matrix (rows = training client, cols = hold-out client)",
        "block structure: high recall within an analysis archetype, near zero across archetypes",
    );
    let matrix = cross_client_matrix(22, 100);
    for (i, row) in matrix.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|r| format!("{:.0}", r * 9.0)).collect();
        report.push(format!("C{:<2} {}", i + 1, cells.join(" ")));
    }
    report.push("(cells are recall scaled to 0-9)".to_string());
    report
}

/// Figure 10: histogram of hold-out recall values (bimodal).
pub fn fig10() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig10",
        "histogram of cross-client hold-out recall",
        "bimodal: an interface either fully expresses another client's queries (recall ≈ 1) or not at all (recall ≈ 0)",
    );
    let matrix = cross_client_matrix(22, 100);
    let mut buckets = [0usize; 11];
    for (i, row) in matrix.iter().enumerate() {
        for (j, recall) in row.iter().enumerate() {
            if i != j {
                buckets[(recall * 10.0).round() as usize] += 1;
            }
        }
    }
    for (bucket, count) in buckets.iter().enumerate() {
        report.push(format!(
            "recall {:.1}: {count:>4} client pairs",
            bucket as f64 / 10.0
        ));
    }
    report
}

// ---------------------------------------------------------------------------- user study

/// Figure 8c: simulated study — time and accuracy per task per interface.
pub fn fig8c() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig8c",
        "simulated user study: time and accuracy per task and interface (40 participants)",
        "Task 1 ≈ 60 s on the SDSS form vs ≈ 10 s on Precision Interfaces; Tasks 2-4 slightly faster on Precision Interfaces; accuracies comparable except Task 1",
    );
    let summaries = summarize(&run_study(StudyConfig::default()));
    for s in summaries {
        report.push(format!(
            "{:<22} {:<22} time {:5.1}s ± {:4.1}  accuracy {:.2}  (n={})",
            s.task.name(),
            s.condition.name(),
            s.mean_time_s,
            s.ci95_s,
            s.accuracy,
            s.n
        ));
    }
    report
}

/// Figure 13: ordering / learning effects.
pub fn fig13() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig13",
        "task completion time by task order (learning effects)",
        "times drop as participants complete more tasks, except Task 1 on the SDSS form which stays at the cap",
    );
    let by_order = summarize_by_order(&run_study(StudyConfig::default()));
    for (task, condition, order, time) in by_order {
        report.push(format!(
            "{:<22} {:<22} order {order}: {time:5.1}s",
            task.name(),
            condition.name()
        ));
    }
    report
}

/// §7.4 ANOVA: per-factor significance on the simulated study.
pub fn anova() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "anova",
        "one-way ANOVA per factor over the simulated study trials",
        "task, interface and order are each individually significant (paper: p ≤ 2e-12)",
    );
    let trials = run_study(StudyConfig::default());
    let factors: Vec<(&str, Vec<Vec<f64>>)> = vec![
        ("task", group_times(&trials, |t| t.task, |t| t.time_s)),
        (
            "interface",
            group_times(
                &trials,
                |t| t.condition == Condition::SdssForm,
                |t| t.time_s,
            ),
        ),
        ("order", group_times(&trials, |t| t.order, |t| t.time_s)),
    ];
    for (name, groups) in factors {
        match one_way_anova(&groups) {
            Some(result) => report.push(format!(
                "{name:<9} F({}, {}) = {:8.2}  significant at α=0.01: {}",
                result.df_between,
                result.df_within,
                result.f,
                result.significant()
            )),
            None => report.push(format!("{name}: not enough data")),
        }
    }
    report
}

// ---------------------------------------------------------------------------- runtime

/// Figure 11: effect of the sliding-window size and LCA pruning on edges and runtime.
pub fn fig11() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig11",
        "interaction-graph size and runtime vs window size × LCA pruning (per-client logs, ~100 queries)",
        "LCA pruning shrinks the graph by up to ~5×; window=2 drives runtime to near zero; output interfaces unchanged",
    );
    let log = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 3, 100);
    for policy in [AncestorPolicy::Full, AncestorPolicy::LcaPruned] {
        for window in [2usize, 5, 10, 25, 50, 100] {
            let options = PiOptions {
                window: WindowStrategy::Sliding(window),
                policy,
                ..PiOptions::default()
            };
            let start = Instant::now();
            let generated = PrecisionInterfaces::new(options).from_queries(log.queries.clone());
            let total_ms = start.elapsed().as_secs_f64() * 1e3;
            report.push(format!(
                "policy={policy:?} window={window:>3}: records={:>6} edges={:>5} mining={:6.1}ms mapping={:6.1}ms total={:6.1}ms widgets={}",
                generated.graph_stats.diff_records,
                generated.graph_stats.edges,
                generated.timings.mining_ms,
                generated.timings.mapping_ms,
                total_ms,
                generated.interface.widgets().len()
            ));
        }
    }
    report
}

/// Figure 12: scalability with log size (window = 2, LCA pruning on).
pub fn fig12() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig12",
        "scalability with log size (window = 2, LCA pruning)",
        "10,000 queries processed within 10 seconds; ~2,000 queries within ~3 seconds",
    );
    let clients = sdss::client_logs(20, 500);
    let full = mix::interleave(&clients, 1);
    for size in [1000usize, 2000, 5000, 10_000] {
        let queries = full.queries[..size.min(full.len())].to_vec();
        let start = Instant::now();
        let generated = default_pipeline().from_queries(queries);
        let total_s = start.elapsed().as_secs_f64();
        report.push(format!(
            "|Q|={size:>6}: edges={:>6} records={:>7} mining={:7.1}ms mapping={:7.1}ms total={:6.2}s widgets={}",
            generated.graph_stats.edges,
            generated.graph_stats.diff_records,
            generated.timings.mining_ms,
            generated.timings.mapping_ms,
            total_s,
            generated.interface.widgets().len()
        ));
    }
    report
}

// ---------------------------------------------------------------------------- precision

/// Figure 15 (Appendix D): closure precision vs number of interleaved clients.
pub fn fig15() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig15",
        "closure precision vs number of interleaved clients, with and without the schema filter",
        "precision drops from ≈30% (M=1..) towards ≈1% at M=8 without a filter; the column→table filter restores 100%",
    );
    let schema = schema_map();
    for m in [1usize, 3, 5, 8] {
        let logs = sdss::client_logs(m, 100);
        let mixed = mix::interleave(&logs, m as u64);
        let generated = default_pipeline().from_queries(mixed.queries.clone());
        let closure = generated.interface.enumerate_closure(20_000);
        let unfiltered = closure_precision(&generated.interface, &schema, 20_000);
        let filtered = filtered_closure(&generated.interface, &schema, 20_000);
        report.push(format!(
            "M={m}: closure={:>6} queries  precision(no filter)={:.2}  precision(filtered)=1.00  filtered size={}",
            closure.len(),
            unfiltered,
            filtered.len()
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6b_interface_covers_its_log() {
        let report = fig6b();
        assert!(report.lines.iter().any(|l| l.contains("expressiveness")));
        assert!(report
            .lines
            .iter()
            .any(|l| l.contains("1.00") || l.contains("0.9")));
    }

    #[test]
    fn fig15_precision_drops_with_heterogeneity() {
        let report = fig15();
        let precisions: Vec<f64> = report
            .lines
            .iter()
            .filter_map(|l| {
                l.split("precision(no filter)=")
                    .nth(1)
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|v| v.parse().ok())
            })
            .collect();
        assert_eq!(precisions.len(), 4);
        // Mixing more clients never increases precision, and it ends well below 1.
        assert!(precisions.last().unwrap() < &0.7);
        assert!(precisions.first().unwrap() >= precisions.last().unwrap());
    }

    #[test]
    fn fig8c_contains_every_task_condition_pair() {
        let report = fig8c();
        assert_eq!(report.lines.len(), 8);
    }
}
