//! `experiments` — command-line driver for the reproduction harness.
//!
//! ```text
//! experiments --list          # list experiment ids
//! experiments --exp fig6a     # run one experiment
//! experiments --exp all       # run every experiment, in paper order
//! ```

use pi_experiments::{experiment_ids, run_experiment};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for id in experiment_ids() {
                    println!("{id}");
                }
                return;
            }
            "--exp" => {
                selected = args.get(i + 1).cloned();
                i += 1;
            }
            "--help" | "-h" => {
                println!("usage: experiments [--list] [--exp <id>|all]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let selected = selected.unwrap_or_else(|| "all".to_string());
    let ids: Vec<&str> = if selected == "all" {
        experiment_ids()
    } else {
        vec![Box::leak(selected.into_boxed_str())]
    };

    let overall = Instant::now();
    for id in ids {
        let start = Instant::now();
        match run_experiment(id) {
            Some(report) => {
                print!("{}", report.render());
                println!("   [took {:.1}s]\n", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment `{id}`; use --list to see the available ids");
                std::process::exit(2);
            }
        }
    }
    println!("total: {:.1}s", overall.elapsed().as_secs_f64());
}
