//! # pi-experiments — reproduction harness for every table and figure
//!
//! Each function in [`figures`] regenerates one table or figure from the paper's evaluation
//! (§7 and the appendices) using the synthetic stand-in workloads from `pi-workloads`, and
//! returns an [`ExperimentReport`] — a set of plain-text lines containing the measured series
//! next to the shape the paper reports.  The `experiments` binary prints them
//! (`experiments --exp fig6a`, `experiments --exp all`), and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;

/// The output of one reproduced experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Short identifier (`table1`, `fig6a`, …) used by the CLI.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper reports (the shape we are trying to match).
    pub paper_claim: String,
    /// The measured output, one line per row/series point.
    pub lines: Vec<String>,
}

impl ExperimentReport {
    /// Creates a report.
    pub fn new(id: &str, title: &str, paper_claim: &str) -> Self {
        ExperimentReport {
            id: id.to_string(),
            title: title.to_string(),
            paper_claim: paper_claim.to_string(),
            lines: Vec::new(),
        }
    }

    /// Appends one output line.
    pub fn push(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   paper: {}\n", self.paper_claim));
        for line in &self.lines {
            out.push_str(&format!("   {line}\n"));
        }
        out
    }
}

/// The registry of all experiments, in paper order.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "table1", "cost-fit", "fig5", "fig6a", "fig6b", "fig6c", "fig6d", "fig7a", "fig7b",
        "fig7c", "fig8c", "fig9", "fig10", "fig11", "fig12", "fig13", "fig15", "anova",
    ]
}

/// Runs one experiment by id.
pub fn run_experiment(id: &str) -> Option<ExperimentReport> {
    Some(match id {
        "table1" => figures::table1(),
        "cost-fit" => figures::cost_fit(),
        "fig5" => figures::fig5(),
        "fig6a" => figures::fig6a(),
        "fig6b" => figures::fig6b(),
        "fig6c" => figures::fig6c(),
        "fig6d" => figures::fig6d(),
        "fig7a" => figures::fig7a(),
        "fig7b" => figures::fig7b(),
        "fig7c" => figures::fig7c(),
        "fig8c" => figures::fig8c(),
        "fig9" => figures::fig9(),
        "fig10" => figures::fig10(),
        "fig11" => figures::fig11(),
        "fig12" => figures::fig12(),
        "fig13" => figures::fig13(),
        "fig15" => figures::fig15(),
        "anova" => figures::anova(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_experiment_runs_and_produces_output() {
        // The heavyweight scaling experiments (fig11/fig12) are exercised by the benches and
        // by `--exp all`; here we smoke-test the cheap ones so `cargo test` stays fast.
        for id in [
            "table1", "cost-fit", "fig5", "fig6b", "fig8c", "fig13", "anova",
        ] {
            let report = run_experiment(id).unwrap_or_else(|| panic!("unknown id {id}"));
            assert_eq!(report.id, id);
            assert!(!report.lines.is_empty(), "{id} produced no output");
            assert!(report.render().contains("paper:"));
        }
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(run_experiment("fig99").is_none());
        assert!(experiment_ids().contains(&"fig15"));
    }
}
