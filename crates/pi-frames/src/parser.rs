//! Parser for the method-chain dataframe dialect, producing `pi_ast` trees.
//!
//! The crucial property is **shape compatibility with `pi-sql`**: a frames query and the
//! equivalent SQL query parse into *identical* trees — same clause order (`Project`,
//! `From`, `Where?`, `GroupBy?`, `Having?`, `OrderBy?`, `Limit?`), same node kinds, same
//! attribute spellings (`==` becomes `op: "="`, `&` becomes a left-associative `AND`
//! chain, aggregate names are upper-cased the way the SQL parser canonicalises them).
//! That is what lets a mixed SQL + frames log diff cleanly and mine into one interface.
//!
//! Method chains accumulate clause state and the tree is built in canonical clause order
//! at the end, so `t.groupby(a).filter(x == 1)` and `t.filter(x == 1).groupby(a)` are the
//! same query — method order is surface syntax, not structure.

use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use pi_ast::{Node, NodeKind};

/// Aggregate names canonicalised to upper case, mirroring the SQL parser's list.
const AGGREGATES: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE"];

/// Parses a single frames statement (one method chain) into an AST.
pub fn parse(text: &str) -> Result<Node, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser::new(tokens);
    let node = parser.parse_statement()?;
    parser.expect_end()?;
    Ok(node)
}

/// Parses a log of `;`-separated frames statements, reporting per-statement outcomes
/// (mirrors `pi_sql::parse_log`: one typo must not discard the rest of the log).
pub fn parse_log(text: &str) -> Vec<Result<Node, ParseError>> {
    text.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

/// Accumulated clause state of one method chain.
#[derive(Debug, Default)]
struct ChainState {
    select: Vec<Node>,      // ProjClause nodes from select(...)
    agg: Option<Vec<Node>>, // ProjClause nodes from agg(...); Some even when empty
    filters: Vec<Node>,     // predicate expressions from filter(...)
    groupby: Vec<Node>,     // grouping key expressions from groupby(...)
    having: Vec<Node>,      // predicate expressions from having(...)
    sort: Vec<Node>,        // OrderClause nodes from sort(...)
    limit: Option<Node>,    // Limit node from limit(n) / head(n)
    distinct: bool,
}

/// The recursive-descent parser state.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // ------------------------------------------------------------------ token helpers

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, n: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_token(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, kind: TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat_token(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn at_op(&self, op: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Op(o)) if o == op)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(tok) => ParseError::new(
                format!("expected {expected}, found {}", tok.describe()),
                self.offset(),
            ),
            None => ParseError::new(
                format!("expected {expected}, found end of input"),
                self.offset(),
            ),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => {
                let Some(TokenKind::Ident(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// Consumes optional trailing semicolons and verifies nothing else follows.
    pub fn expect_end(&mut self) -> Result<(), ParseError> {
        while self.eat_token(&TokenKind::Semicolon) {}
        match self.peek() {
            None => Ok(()),
            Some(tok) => Err(ParseError::new(
                format!("trailing input: {}", tok.describe()),
                self.offset(),
            )),
        }
    }

    // ------------------------------------------------------------------ statements

    /// Parses one method-chain query.
    pub fn parse_statement(&mut self) -> Result<Node, ParseError> {
        let base = self.parse_base()?;
        let mut state = ChainState::default();
        while self.eat_token(&TokenKind::Dot) {
            let offset = self.offset();
            let method = self.expect_ident("a method name")?;
            self.expect_token(TokenKind::LParen, "`(` after the method name")?;
            let args = self.parse_args()?;
            self.expect_token(TokenKind::RParen, "`)`")?;
            self.apply_method(&mut state, &method, args, offset)?;
        }
        state.build(base)
    }

    /// The chain's base relation: a (possibly dotted) table name, a table-valued function,
    /// or a parenthesised subquery chain.
    fn parse_base(&mut self) -> Result<Node, ParseError> {
        if self.eat_token(&TokenKind::LParen) {
            let sub = self.parse_statement()?;
            self.expect_token(TokenKind::RParen, "`)` closing the subquery")?;
            return Ok(Node::new(NodeKind::SubqueryRef).with_child(sub));
        }
        let mut name = self.expect_ident("a table name")?;
        // Dotted name parts continue the base only while the next segment is itself
        // followed by a dot or a call — `dbo.fGetNearbyObjEq(...)` is a base, but in
        // `t.filter(...)` the `.filter` belongs to the chain.
        while self.peek() == Some(&TokenKind::Dot) {
            match (self.peek_at(1), self.peek_at(2)) {
                (Some(TokenKind::Ident(_)), Some(TokenKind::Dot))
                | (Some(TokenKind::Ident(_)), Some(TokenKind::LParen)) => {
                    let part_is_method = matches!(
                        self.peek_at(1),
                        Some(TokenKind::Ident(m)) if is_chain_method(m)
                    ) && self.peek_at(2) == Some(&TokenKind::LParen);
                    if part_is_method {
                        break;
                    }
                    self.bump();
                    let part = self.expect_ident("a name part")?;
                    name.push('.');
                    name.push_str(&part);
                }
                _ => break,
            }
        }
        if self.peek() == Some(&TokenKind::LParen) {
            // Table-valued function base: dbo.fGetNearbyObjEq(5.8, 0.3, 2.0)
            self.bump();
            let args = self.parse_args()?;
            self.expect_token(TokenKind::RParen, "`)`")?;
            Ok(Node::new(NodeKind::TableFunc)
                .with_attr("name", name.as_str())
                .with_children(args))
        } else {
            Ok(Node::table(&name))
        }
    }

    /// Comma-separated expressions up to (not including) the closing `)`.
    fn parse_args(&mut self) -> Result<Vec<Node>, ParseError> {
        let mut args = Vec::new();
        if self.peek() == Some(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr()?);
            if !self.eat_token(&TokenKind::Comma) {
                break;
            }
        }
        Ok(args)
    }

    fn apply_method(
        &self,
        state: &mut ChainState,
        method: &str,
        args: Vec<Node>,
        offset: usize,
    ) -> Result<(), ParseError> {
        let arity_error = |what: &str| ParseError::new(format!("{method}() takes {what}"), offset);
        match method {
            "filter" => {
                if args.is_empty() {
                    return Err(arity_error("at least one predicate"));
                }
                state.filters.extend(args);
            }
            "select" => {
                if args.is_empty() {
                    return Err(arity_error("at least one projection"));
                }
                state.select.extend(args.into_iter().map(proj_clause));
            }
            "agg" => {
                state
                    .agg
                    .get_or_insert_with(Vec::new)
                    .extend(args.into_iter().map(proj_clause));
            }
            "groupby" => {
                if args.is_empty() {
                    return Err(arity_error("at least one grouping key"));
                }
                state.groupby.extend(args);
            }
            "having" => {
                if args.is_empty() {
                    return Err(arity_error("at least one predicate"));
                }
                state.having.extend(args);
            }
            "sort" => {
                if args.is_empty() {
                    return Err(arity_error("at least one sort key"));
                }
                state.sort.extend(args.into_iter().map(order_clause));
            }
            "limit" | "head" => {
                let [expr] = <[Node; 1]>::try_from(args)
                    .map_err(|_| arity_error("exactly one row count"))?;
                let mut limit = Node::new(NodeKind::Limit);
                if method == "head" {
                    // head() is the TOP-style limit, matching `SELECT TOP n`.
                    limit.set_attr("style", "top");
                }
                state.limit = Some(limit.with_child(expr));
            }
            "distinct" => {
                if !args.is_empty() {
                    return Err(arity_error("no arguments"));
                }
                state.distinct = true;
            }
            other => {
                return Err(ParseError::new(
                    format!("unknown method `{other}` (expected filter/select/groupby/agg/having/sort/limit/head/distinct)"),
                    offset,
                ))
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------ expressions

    /// Parses a full expression: `|` over `&` over `~` over comparisons over arithmetic —
    /// the same precedence ladder as the SQL parser's OR / AND / NOT / comparison levels,
    /// so mixed-dialect predicates associate identically.
    pub fn parse_expr(&mut self) -> Result<Node, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_op("|") {
            let right = self.parse_and()?;
            left = binop("OR", left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_op("&") {
            let right = self.parse_not()?;
            left = binop("AND", left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Node, ParseError> {
        if self.eat_op("~") {
            let inner = self.parse_not()?;
            Ok(Node::new(NodeKind::UnExpr)
                .with_attr("op", "NOT")
                .with_child(inner))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Node, ParseError> {
        let left = self.parse_additive()?;
        if let Some(TokenKind::Op(op)) = self.peek() {
            let op = op.clone();
            if matches!(op.as_str(), "==" | "!=" | "<" | "<=" | ">" | ">=") {
                self.bump();
                let right = self.parse_additive()?;
                // `==` is surface syntax for the SQL parser's `=`; `!=` stays `!=`.
                let canonical = if op == "==" { "=" } else { op.as_str() };
                return Ok(binop(canonical, left, right));
            }
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Op(o)) if o == "+" || o == "-" => o.clone(),
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = binop(&op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Op(o)) if o == "/" || o == "%" => o.clone(),
                Some(TokenKind::Star) => "*".to_string(),
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = binop(&op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Node, ParseError> {
        if self.eat_op("-") {
            let inner = self.parse_unary()?;
            // Fold negation into numeric literals so `-5` is a single NumExpr, exactly as
            // the SQL parser does.
            if inner.kind() == NodeKind::NumExpr {
                if let Some(v) = inner.attr("value") {
                    return Ok(match v {
                        pi_ast::AttrValue::Int(i) => Node::int(-i),
                        pi_ast::AttrValue::Float(f) => Node::float(-f),
                        _ => Node::new(NodeKind::UnExpr)
                            .with_attr("op", "-")
                            .with_child(inner),
                    });
                }
            }
            return Ok(Node::new(NodeKind::UnExpr)
                .with_attr("op", "-")
                .with_child(inner));
        }
        if self.eat_op("+") {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Node, ParseError> {
        match self.peek().cloned() {
            Some(TokenKind::Int(i)) => {
                self.bump();
                Ok(Node::int(i))
            }
            Some(TokenKind::Float(f)) => {
                self.bump();
                Ok(Node::float(f))
            }
            Some(TokenKind::Hex(h)) => {
                self.bump();
                Ok(Node::hex(h))
            }
            Some(TokenKind::Str(s)) => {
                self.bump();
                Ok(Node::string(&s))
            }
            Some(TokenKind::Star) => {
                self.bump();
                Ok(Node::star())
            }
            Some(TokenKind::LParen) => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect_token(TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            Some(TokenKind::Ident(_)) => self.parse_name_or_call(),
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_name_or_call(&mut self) -> Result<Node, ParseError> {
        let offset = self.offset();
        let first = self.expect_ident("an identifier")?;

        let mut parts = vec![first];
        while self.peek() == Some(&TokenKind::Dot) {
            match self.peek_at(1) {
                Some(TokenKind::Ident(_)) => {
                    self.bump();
                    parts.push(self.expect_ident("a name part")?);
                }
                Some(TokenKind::Star) => {
                    // g.* — a table-qualified star projection.
                    self.bump();
                    self.bump();
                    return Ok(Node::star().with_attr("table", parts.join(".").as_str()));
                }
                _ => break,
            }
        }

        if self.peek() == Some(&TokenKind::LParen) {
            self.bump();
            let args = self.parse_args()?;
            self.expect_token(TokenKind::RParen, "`)`")?;
            return build_call(parts.join("."), args, offset);
        }

        // Bare identifier: python-ish literal keywords, else a column reference.
        match parts.as_slice() {
            [single] if single == "True" => {
                Ok(Node::new(NodeKind::BoolExpr).with_attr("value", "true"))
            }
            [single] if single == "False" => {
                Ok(Node::new(NodeKind::BoolExpr).with_attr("value", "false"))
            }
            [single] if single == "None" => Ok(Node::new(NodeKind::Null)),
            [single] => Ok(Node::column(single)),
            _ => {
                let name = parts.pop().expect("at least two parts");
                Ok(Node::qualified_column(&parts.join("."), &name))
            }
        }
    }
}

/// True for the identifiers that terminate a dotted base name because they start a chain.
fn is_chain_method(name: &str) -> bool {
    matches!(
        name,
        "filter" | "select" | "groupby" | "agg" | "having" | "sort" | "limit" | "head" | "distinct"
    )
}

fn binop(op: &str, left: Node, right: Node) -> Node {
    Node::new(NodeKind::BiExpr)
        .with_attr("op", op)
        .with_child(left)
        .with_child(right)
}

/// Wraps a select()/agg() argument into a `ProjClause`, unwrapping `alias(expr, 'name')`.
fn proj_clause(expr: Node) -> Node {
    if let Some((inner, alias)) = match_alias_call(&expr) {
        return Node::new(NodeKind::ProjClause)
            .with_attr("alias", alias.as_str())
            .with_child(inner);
    }
    Node::new(NodeKind::ProjClause).with_child(expr)
}

/// Recognises the `alias(expr, 'name')` pseudo-function inside select()/agg() arguments.
fn match_alias_call(expr: &Node) -> Option<(Node, String)> {
    if expr.kind_ref() != &NodeKind::FuncCall {
        return None;
    }
    let [name, inner, alias] = expr.children() else {
        return None;
    };
    if name.kind_ref() != &NodeKind::FuncName || name.attr_str("name") != Some("alias") {
        return None;
    }
    let alias = alias.attr_str("value")?;
    Some((inner.clone(), alias.to_string()))
}

/// Wraps a sort() argument into an `OrderClause`, unwrapping `desc(expr)`.
fn order_clause(expr: Node) -> Node {
    if expr.kind_ref() == &NodeKind::FuncCall {
        if let [name, inner] = expr.children() {
            if name.kind_ref() == &NodeKind::FuncName && name.attr_str("name") == Some("desc") {
                return Node::new(NodeKind::OrderClause)
                    .with_attr("dir", "desc")
                    .with_child(inner.clone());
            }
        }
    }
    Node::new(NodeKind::OrderClause)
        .with_attr("dir", "asc")
        .with_child(expr)
}

/// Builds a call expression, giving the pseudo-functions (`isnull`, `isin`, `between`,
/// `like`, `cast`, …) their SQL-compatible tree shapes and canonicalising aggregates the
/// way the SQL parser does (`count(x)` → `AggCall[FuncName COUNT, x]`).
fn build_call(name: String, mut args: Vec<Node>, offset: usize) -> Result<Node, ParseError> {
    let arity_error = |what: &str| ParseError::new(format!("{name}() takes {what}"), offset);
    match name.as_str() {
        "isnull" | "notnull" => {
            let [inner] = <[Node; 1]>::try_from(args).map_err(|_| arity_error("one argument"))?;
            let op = if name == "isnull" {
                "IS NULL"
            } else {
                "IS NOT NULL"
            };
            Ok(Node::new(NodeKind::UnExpr)
                .with_attr("op", op)
                .with_child(inner))
        }
        "isin" | "notin" => {
            if args.len() < 2 {
                return Err(arity_error("an expression plus at least one member"));
            }
            let rest = args.split_off(1);
            let left = args.pop().expect("one element left");
            let list = Node::new(NodeKind::ExprList).with_children(rest);
            let op = if name == "isin" { "IN" } else { "NOT IN" };
            Ok(binop(op, left, list))
        }
        "between" => {
            let [expr, lo, hi] =
                <[Node; 3]>::try_from(args).map_err(|_| arity_error("three arguments"))?;
            let list = Node::new(NodeKind::ExprList).with_child(lo).with_child(hi);
            Ok(binop("BETWEEN", expr, list))
        }
        "like" => {
            let [expr, pattern] =
                <[Node; 2]>::try_from(args).map_err(|_| arity_error("two arguments"))?;
            Ok(binop("LIKE", expr, pattern))
        }
        "cast" => {
            let [expr, ty] =
                <[Node; 2]>::try_from(args).map_err(|_| arity_error("two arguments"))?;
            let Some(ty) = ty.attr_str("value").map(str::to_string) else {
                return Err(arity_error("a string type name as its second argument"));
            };
            Ok(Node::new(NodeKind::Cast)
                .with_attr("ty", ty.as_str())
                .with_child(expr))
        }
        _ => {
            let upper = name.to_ascii_uppercase();
            let (kind, canonical, distinct) = if AGGREGATES.contains(&upper.as_str()) {
                (NodeKind::AggCall, upper, false)
            } else if let Some(prefix) = upper.strip_suffix("_DISTINCT") {
                if AGGREGATES.contains(&prefix) {
                    // COUNT_DISTINCT(x) ≙ SQL COUNT(DISTINCT x).
                    (NodeKind::AggCall, prefix.to_string(), true)
                } else {
                    (NodeKind::FuncCall, name, false)
                }
            } else {
                (NodeKind::FuncCall, name, false)
            };
            let mut node = Node::new(kind)
                .with_child(Node::new(NodeKind::FuncName).with_attr("name", canonical.as_str()));
            if distinct {
                node.set_attr("distinct", true);
            }
            Ok(node.with_children(args))
        }
    }
}

impl ChainState {
    /// Builds the canonical `Select` tree: the same clause order the SQL parser produces.
    fn build(self, base: Node) -> Result<Node, ParseError> {
        if self.agg.is_some() && !self.select.is_empty() {
            return Err(ParseError::new(
                "select() and agg() cannot be combined; aggregated projections belong in agg()",
                0,
            ));
        }
        let mut root = Node::new(NodeKind::Select);
        if self.distinct {
            root.set_attr("distinct", true);
        }

        // Projection: agg(...) projects the aggregates followed by the grouping keys (the
        // `SELECT COUNT(Delay), DestState … GROUP BY DestState` shape); select(...) projects
        // its arguments; a bare chain projects `*`.
        let mut project = Node::new(NodeKind::Project);
        match self.agg {
            Some(aggs) => {
                for clause in aggs {
                    project.push_child(clause);
                }
                for key in &self.groupby {
                    project.push_child(Node::new(NodeKind::ProjClause).with_child(key.clone()));
                }
            }
            None if !self.select.is_empty() => {
                for clause in self.select {
                    project.push_child(clause);
                }
            }
            None => {
                project.push_child(Node::new(NodeKind::ProjClause).with_child(Node::star()));
            }
        }
        root.push_child(project);

        root.push_child(Node::new(NodeKind::From).with_child(base));

        if !self.filters.is_empty() {
            let pred = conjoin(self.filters);
            root.push_child(Node::new(NodeKind::Where).with_child(pred));
        }

        if !self.groupby.is_empty() {
            let mut gb = Node::new(NodeKind::GroupBy);
            for key in self.groupby {
                gb.push_child(Node::new(NodeKind::GroupClause).with_child(key));
            }
            root.push_child(gb);
        }

        if !self.having.is_empty() {
            let pred = conjoin(self.having);
            root.push_child(Node::new(NodeKind::Having).with_child(pred));
        }

        if !self.sort.is_empty() {
            let mut ob = Node::new(NodeKind::OrderBy);
            for clause in self.sort {
                ob.push_child(clause);
            }
            root.push_child(ob);
        }

        if let Some(limit) = self.limit {
            root.push_child(limit);
        }

        Ok(root)
    }
}

/// Left-associative AND chain, matching the SQL parser's associativity.
fn conjoin(preds: Vec<Node>) -> Node {
    let mut iter = preds.into_iter();
    let first = iter.next().expect("conjoin is called with predicates");
    iter.fold(first, |acc, pred| binop("AND", acc, pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Path;

    #[test]
    fn parses_a_filtered_aggregation() {
        let q = parse("ontime.filter(Month == 9 & Day == 3).groupby(DestState).agg(COUNT(Delay))")
            .unwrap();
        assert_eq!(q.kind(), NodeKind::Select);
        assert_eq!(q.arity(), 4); // Project, From, Where, GroupBy
        let agg = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(agg.kind(), NodeKind::AggCall);
        assert_eq!(agg.children()[0].attr_str("name"), Some("COUNT"));
        // The grouping key is also projected, after the aggregates.
        let dim = q.get(&"0/1/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(dim.attr_str("name"), Some("DestState"));
        let and = q.get(&"2/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(and.attr_str("op"), Some("AND"));
        let eq = &and.children()[0];
        assert_eq!(eq.attr_str("op"), Some("="));
    }

    #[test]
    fn matches_the_sql_parser_tree_for_the_same_analysis() {
        // The paper's Listing 2 OLAP query, written in both dialects, must be ONE tree.
        let frames =
            parse("ontime.filter(Month == 9 & Day == 3).groupby(DestState).agg(COUNT(Delay))")
                .unwrap();
        let sql = pi_sql::parse(
            "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
        )
        .unwrap();
        assert_eq!(frames, sql);
        assert_eq!(frames.structural_hash(), sql.structural_hash());
    }

    #[test]
    fn method_order_is_surface_syntax_only() {
        let a = parse("t.filter(x == 1).groupby(s).agg(SUM(v))").unwrap();
        let b = parse("t.groupby(s).agg(SUM(v)).filter(x == 1)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_filters_conjoin_left_associatively() {
        let chained = parse("t.filter(a == 1).filter(b == 2).filter(c == 3)").unwrap();
        let single = parse("t.filter(a == 1 & b == 2 & c == 3)").unwrap();
        assert_eq!(chained, single);
        let sql = pi_sql::parse("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3").unwrap();
        assert_eq!(chained, sql);
    }

    #[test]
    fn bare_chain_projects_star() {
        let q = parse("SpecLineIndex.filter(specObjId == 0x400)").unwrap();
        let sql = pi_sql::parse("SELECT * FROM SpecLineIndex WHERE specObjId = 0x400").unwrap();
        assert_eq!(q, sql);
    }

    #[test]
    fn select_head_sort_and_distinct_match_sql() {
        let q = parse("ontime.select(carrier).distinct().sort(desc(carrier)).limit(10)").unwrap();
        let sql =
            pi_sql::parse("SELECT DISTINCT carrier FROM ontime ORDER BY carrier DESC LIMIT 10")
                .unwrap();
        assert_eq!(q, sql);

        let top = parse("Galaxy.select(g.objID).head(10)").unwrap();
        let limit = top.children().last().unwrap();
        assert_eq!(limit.kind(), NodeKind::Limit);
        assert_eq!(limit.attr_str("style"), Some("top"));
    }

    #[test]
    fn table_function_bases_and_qualified_columns() {
        let q = parse("dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616).select(d.objID)").unwrap();
        let from = q.get(&"1/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(from.kind(), NodeKind::TableFunc);
        assert_eq!(from.attr_str("name"), Some("dbo.fGetNearbyObjEq"));
        assert_eq!(from.arity(), 3);
        let col = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(col.attr_str("table"), Some("d"));
        assert_eq!(col.attr_str("name"), Some("objID"));
    }

    #[test]
    fn subquery_bases_nest() {
        let q = parse("(T.filter(b > 10).select(a)).select(*)").unwrap();
        let sql = pi_sql::parse("SELECT * FROM (SELECT a FROM T WHERE b > 10)").unwrap();
        assert_eq!(q, sql);
    }

    #[test]
    fn pseudo_functions_take_sql_shapes() {
        let q =
            parse("t.filter(isin(c, 1, 2, 3) & between(d, 0.5, 2.5) & notnull(b) & like(e, 'x%'))")
                .unwrap();
        let sql = pi_sql::parse(
            "SELECT * FROM t WHERE c IN (1, 2, 3) AND d BETWEEN 0.5 AND 2.5 AND b IS NOT NULL AND e LIKE 'x%'",
        )
        .unwrap();
        assert_eq!(q, sql);
    }

    #[test]
    fn not_cast_alias_and_distinct_aggregates() {
        let q = parse("t.filter(~(d == 4))").unwrap();
        let sql = pi_sql::parse("SELECT * FROM t WHERE NOT d = 4").unwrap();
        assert_eq!(q, sql);

        let q =
            parse("ontime.select(alias(cast(uniquecarrier, 'varchar'), 'uniquecarrier'))").unwrap();
        let sql = pi_sql::parse("SELECT CAST(uniquecarrier) AS uniquecarrier FROM ontime").unwrap();
        assert_eq!(q, sql);

        let q = parse("ontime.agg(alias(COUNT_DISTINCT(carrier), 'c'))").unwrap();
        let sql = pi_sql::parse("SELECT COUNT(DISTINCT carrier) AS c FROM ontime").unwrap();
        assert_eq!(q, sql);
    }

    #[test]
    fn literal_keywords_and_star_qualifiers() {
        let q = parse("t.filter(flag == True).select(g.*)").unwrap();
        let sql = pi_sql::parse("SELECT g.* FROM t WHERE flag = TRUE").unwrap();
        assert_eq!(q, sql);
        let q = parse("t.filter(x != None)").unwrap();
        let pred = q.get(&"2/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(pred.children()[1].kind(), NodeKind::Null);
    }

    #[test]
    fn arithmetic_precedence_matches_sql() {
        let q = parse("t.select(a + b * 2, FLOOR(distance / 5))").unwrap();
        let sql = pi_sql::parse("SELECT a + b * 2, FLOOR(distance / 5) FROM t").unwrap();
        assert_eq!(q, sql);
        let neg = parse("t.filter(z > -0.5)").unwrap();
        let sqln = pi_sql::parse("SELECT * FROM t WHERE z > -0.5").unwrap();
        assert_eq!(neg, sqln);
    }

    #[test]
    fn non_ascii_literals_match_sql_and_round_trip() {
        let q = parse("t.filter(name == 'café — 雪')").unwrap();
        let sql = pi_sql::parse("SELECT * FROM t WHERE name = 'café — 雪'").unwrap();
        assert_eq!(q, sql);
        assert_eq!(parse(&crate::render(&q)).unwrap(), q);
    }

    #[test]
    fn rejects_malformed_chains() {
        assert!(parse("t.filter(x == 1).explode(y)").is_err()); // unknown method
                                                                // (`t.explode(x)` alone is a *base*: a table-valued function, like
                                                                // `dbo.fGetNearbyObjEq(...)` — only post-base calls must be chain methods.)
        assert!(parse("t.filter()").is_err()); // missing predicate
        assert!(parse("t.head(1, 2)").is_err()); // wrong arity
        assert!(parse("t.select(a).agg(SUM(b))").is_err()); // select+agg conflict
        assert!(parse("t.filter(x == )").is_err());
        assert!(parse("t.filter(x == 1) trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_log_reports_per_statement_outcomes() {
        let log = "t.filter(x == 1); NOT FRAMES AT ALL; t.filter(x == 2);";
        let results = parse_log(log);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }
}
