//! AST → frames (method-chain) rendering.
//!
//! The inverse of the parser over the trees the parser (or the frames workload generator)
//! produces: `parse(&render(&t))` is structurally identical to `t` — property-tested in
//! `tests/properties.rs`.  Rendering is *total*: trees built by other front-ends render to
//! something readable (SQL-only constructs fall back to a generic `Kind(child, …)`
//! notation), which is what lets a mixed-log interface show every widget option in the
//! dialect its query arrived in.

use pi_ast::{AttrValue, Node, NodeKind};
use std::fmt::Write as _;

/// Renders an AST as frames method-chain text.
pub fn render(node: &Node) -> String {
    let mut out = String::new();
    render_node(node, &mut out);
    out
}

/// [`render`] with all runs of whitespace collapsed (test assertions).
pub fn render_compact(node: &Node) -> String {
    render(node)
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

fn render_node(node: &Node, out: &mut String) {
    match node.kind_ref() {
        NodeKind::Select => render_query(node, out),
        // Clause-level fragments (widget domains hold subtrees at arbitrary paths) render
        // as the method call that would produce them.
        NodeKind::Where => {
            out.push_str("filter(");
            render_expr_list(node, out, " & ");
            out.push(')');
        }
        NodeKind::Having => {
            out.push_str("having(");
            render_expr_list(node, out, " & ");
            out.push(')');
        }
        NodeKind::GroupBy => {
            out.push_str("groupby(");
            for (i, clause) in node.children().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(&clause.children()[0], out);
            }
            out.push(')');
        }
        NodeKind::GroupClause => render_expr_list(node, out, ", "),
        NodeKind::OrderBy => {
            out.push_str("sort(");
            for (i, clause) in node.children().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_order_clause(clause, out);
            }
            out.push(')');
        }
        NodeKind::OrderClause => render_order_clause(node, out),
        NodeKind::Limit => render_limit(node, out),
        NodeKind::ProjClause => render_proj_clause(node, out),
        NodeKind::From => {
            for (i, rel) in node.children().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_base(rel, out);
            }
        }
        // Relation fragments render as the chain bases they stand for, mirroring the SQL
        // renderer's treatment of widget options at FROM paths.
        NodeKind::TableRef | NodeKind::SubqueryRef | NodeKind::TableFunc | NodeKind::Join => {
            render_base(node, out)
        }
        _ => render_expr(node, out),
    }
}

/// Renders a full `Select` tree as `base.method(...)...` in canonical method order.
fn render_query(node: &Node, out: &mut String) {
    let clause = |kind: NodeKind| node.children().iter().find(|c| *c.kind_ref() == kind);

    // Base relation.  A tableless query (SQL allows `SELECT avg(a)`) has an empty FROM;
    // `df` stands in so the chain stays well-formed text (render-only, like every
    // SQL-specific construct).
    match clause(NodeKind::From) {
        Some(from) if from.arity() > 0 => {
            render_base(&from.children()[0], out);
            for rel in &from.children()[1..] {
                out.push_str(".crossjoin(");
                render_base(rel, out);
                out.push(')');
            }
        }
        _ => out.push_str("df"),
    }

    if let Some(wh) = clause(NodeKind::Where) {
        out.push_str(".filter(");
        render_expr(&wh.children()[0], out);
        out.push(')');
    }

    let project = clause(NodeKind::Project);
    match clause(NodeKind::GroupBy) {
        Some(gb) => {
            out.push_str(".groupby(");
            for (i, key) in gb.children().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(&key.children()[0], out);
            }
            out.push(')');
            match project.and_then(|p| split_agg_projection(p, gb)) {
                Some(aggs) => {
                    // Projection = aggregates ++ grouping keys: the agg() form.
                    out.push_str(".agg(");
                    for (i, proj) in aggs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        render_proj_clause(proj, out);
                    }
                    out.push(')');
                }
                None => {
                    if let Some(project) = project {
                        render_select_method(project, out);
                    }
                }
            }
        }
        None => {
            if let Some(project) = project {
                if !projects_bare_star(project) {
                    render_select_method(project, out);
                }
            }
        }
    }

    if let Some(hv) = clause(NodeKind::Having) {
        out.push_str(".having(");
        render_expr(&hv.children()[0], out);
        out.push(')');
    }

    if let Some(ob) = clause(NodeKind::OrderBy) {
        out.push_str(".sort(");
        for (i, oc) in ob.children().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_order_clause(oc, out);
        }
        out.push(')');
    }

    if let Some(limit) = clause(NodeKind::Limit) {
        out.push('.');
        render_limit(limit, out);
    }

    if node.attr("distinct").and_then(AttrValue::as_bool) == Some(true) {
        out.push_str(".distinct()");
    }
}

/// When the projection is `aggregates ++ grouping keys` (the shape both parsers build for
/// an aggregation), returns the aggregate prefix so the query renders as `.agg(...)`.
fn split_agg_projection<'a>(project: &'a Node, groupby: &Node) -> Option<Vec<&'a Node>> {
    let projs = project.children();
    let keys = groupby.children();
    if projs.len() < keys.len() {
        return None;
    }
    let split = projs.len() - keys.len();
    let tail_matches = projs[split..].iter().zip(keys.iter()).all(|(proj, key)| {
        proj.arity() == 1
            && proj.attr("alias").is_none()
            && proj.children()[0].same_tree(&key.children()[0])
    });
    tail_matches.then(|| projs[..split].iter().collect())
}

/// True for the implicit `*` projection a bare chain stands for.
fn projects_bare_star(project: &Node) -> bool {
    match project.children() {
        [only] => {
            only.arity() == 1
                && only.attr("alias").is_none()
                && only.children()[0].kind_ref() == &NodeKind::Star
                && only.children()[0].attr("table").is_none()
        }
        _ => false,
    }
}

fn render_select_method(project: &Node, out: &mut String) {
    out.push_str(".select(");
    for (i, proj) in project.children().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_proj_clause(proj, out);
    }
    out.push(')');
}

fn render_proj_clause(node: &Node, out: &mut String) {
    match (node.attr_str("alias"), node.children().first()) {
        (Some(alias), Some(expr)) => {
            out.push_str("alias(");
            render_expr(expr, out);
            let _ = write!(out, ", '{}'", escape_str(alias));
            out.push(')');
        }
        (None, Some(expr)) => render_expr(expr, out),
        _ => {}
    }
}

fn render_order_clause(node: &Node, out: &mut String) {
    let desc = node.attr_str("dir") == Some("desc");
    if desc {
        out.push_str("desc(");
    }
    if let Some(expr) = node.children().first() {
        render_expr(expr, out);
    }
    if desc {
        out.push(')');
    }
}

fn render_limit(node: &Node, out: &mut String) {
    let method = if node.attr_str("style") == Some("top") {
        "head"
    } else {
        "limit"
    };
    out.push_str(method);
    out.push('(');
    if let Some(expr) = node.children().first() {
        render_expr(expr, out);
    }
    out.push(')');
}

fn render_base(node: &Node, out: &mut String) {
    match node.kind_ref() {
        NodeKind::TableRef => out.push_str(node.attr_str("name").unwrap_or("?")),
        NodeKind::TableFunc => {
            out.push_str(node.attr_str("name").unwrap_or("?"));
            out.push('(');
            for (i, arg) in node.children().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(arg, out);
            }
            out.push(')');
        }
        NodeKind::SubqueryRef => {
            out.push('(');
            render_query(&node.children()[0], out);
            out.push(')');
        }
        NodeKind::Select => {
            out.push('(');
            render_query(node, out);
            out.push(')');
        }
        // Explicit joins are SQL-only; render-only chain notation.
        NodeKind::Join => {
            render_base(&node.children()[0], out);
            out.push_str(".join(");
            render_base(&node.children()[1], out);
            out.push_str(", ");
            render_expr(&node.children()[2], out);
            out.push(')');
        }
        _ => render_expr(node, out),
    }
}

/// True when an expression needs parentheses as an operand of an infix operator.
fn is_composite(node: &Node) -> bool {
    matches!(node.kind_ref(), NodeKind::BiExpr | NodeKind::UnExpr)
}

fn render_operand(node: &Node, out: &mut String) {
    if is_composite(node) {
        out.push('(');
        render_expr(node, out);
        out.push(')');
    } else {
        render_expr(node, out);
    }
}

fn render_expr(node: &Node, out: &mut String) {
    match node.kind_ref() {
        NodeKind::ColExpr => {
            if let Some(table) = node.attr_str("table") {
                let _ = write!(out, "{table}.");
            }
            out.push_str(node.attr_str("name").unwrap_or("?"));
        }
        NodeKind::StrExpr => {
            let value = node.attr_str("value").unwrap_or("");
            let _ = write!(out, "'{}'", escape_str(value));
        }
        NodeKind::NumExpr => match node.attr("value") {
            Some(AttrValue::Int(i)) => {
                let _ = write!(out, "{i}");
            }
            Some(AttrValue::Float(f)) => {
                let _ = write!(out, "{}", AttrValue::Float(*f).render());
            }
            other => {
                let _ = write!(out, "{}", other.map(|v| v.render()).unwrap_or_default());
            }
        },
        NodeKind::HexExpr => {
            let v = node.attr("value").and_then(AttrValue::as_int).unwrap_or(0);
            let _ = write!(out, "0x{v:x}");
        }
        NodeKind::BoolExpr => {
            let v = node.attr_str("value").unwrap_or("false");
            out.push_str(if v == "true" { "True" } else { "False" });
        }
        NodeKind::Null => out.push_str("None"),
        NodeKind::Star => {
            if let Some(table) = node.attr_str("table") {
                let _ = write!(out, "{table}.");
            }
            out.push('*');
        }
        NodeKind::BiExpr => render_biexpr(node, out),
        NodeKind::UnExpr => {
            let op = node.attr_str("op").unwrap_or("NOT");
            let inner = &node.children()[0];
            match op {
                "NOT" => {
                    out.push('~');
                    render_operand(inner, out);
                }
                "-" => {
                    out.push('-');
                    render_operand(inner, out);
                }
                "IS NULL" => {
                    out.push_str("isnull(");
                    render_expr(inner, out);
                    out.push(')');
                }
                "IS NOT NULL" => {
                    out.push_str("notnull(");
                    render_expr(inner, out);
                    out.push(')');
                }
                other => {
                    let _ = write!(out, "{other} ");
                    render_operand(inner, out);
                }
            }
        }
        NodeKind::AggCall | NodeKind::FuncCall => {
            let (name, args): (&str, &[Node]) = match node.children().first() {
                Some(first) if first.kind_ref() == &NodeKind::FuncName => {
                    (first.attr_str("name").unwrap_or("?"), &node.children()[1..])
                }
                _ => (node.attr_str("name").unwrap_or("?"), node.children()),
            };
            let distinct = node.attr("distinct").and_then(AttrValue::as_bool) == Some(true);
            out.push_str(name);
            if distinct {
                // COUNT(DISTINCT x) spells COUNT_DISTINCT(x); the parser undoes this.
                out.push_str("_DISTINCT");
            }
            out.push('(');
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(arg, out);
            }
            out.push(')');
        }
        NodeKind::FuncName => out.push_str(node.attr_str("name").unwrap_or("?")),
        NodeKind::Cast => {
            out.push_str("cast(");
            render_expr(&node.children()[0], out);
            let _ = write!(
                out,
                ", '{}')",
                escape_str(node.attr_str("ty").unwrap_or("varchar"))
            );
        }
        NodeKind::ScalarSubquery => {
            out.push('(');
            render_query(&node.children()[0], out);
            out.push(')');
        }
        NodeKind::ExprList => render_expr_list(node, out, ", "),
        NodeKind::Select => {
            out.push('(');
            render_query(node, out);
            out.push(')');
        }
        // SQL-only constructs (CASE arms, …) and clause nodes in expression position:
        // generic `Kind(child, …)` notation, mirroring the SQL renderer's fallback.
        other => {
            let _ = write!(out, "{}", other.name());
            if node.arity() > 0 {
                out.push('(');
                render_expr_list(node, out, ", ");
                out.push(')');
            }
        }
    }
}

fn render_biexpr(node: &Node, out: &mut String) {
    let op = node.attr_str("op").unwrap_or("=");
    let left = &node.children()[0];
    let right = &node.children()[1];
    let mapped = match op {
        "=" => Some("=="),
        "<>" => Some("!="),
        "AND" => Some("&"),
        "OR" => Some("|"),
        "!=" | "<" | "<=" | ">" | ">=" | "+" | "-" | "*" | "/" | "%" => Some(op),
        _ => None,
    };
    match (op, mapped) {
        (_, Some(infix)) => {
            render_operand(left, out);
            let _ = write!(out, " {infix} ");
            render_operand(right, out);
        }
        ("IN", _) | ("NOT IN", _) => {
            out.push_str(if op == "IN" { "isin(" } else { "notin(" });
            render_expr(left, out);
            out.push_str(", ");
            render_expr_list(right, out, ", ");
            out.push(')');
        }
        ("BETWEEN", _) => {
            out.push_str("between(");
            render_expr(left, out);
            out.push_str(", ");
            render_expr_list(right, out, ", ");
            out.push(')');
        }
        ("LIKE", _) => {
            out.push_str("like(");
            render_expr(left, out);
            out.push_str(", ");
            render_expr(right, out);
            out.push(')');
        }
        // SQL-only operators (NOT BETWEEN, ||, …): readable render-only infix.
        _ => {
            render_operand(left, out);
            let _ = write!(out, " {op} ");
            render_operand(right, out);
        }
    }
}

fn render_expr_list(node: &Node, out: &mut String, sep: &str) {
    for (i, c) in node.children().iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        render_expr(c, out);
    }
}

fn escape_str(value: &str) -> String {
    value.replace('\\', "\\\\").replace('\'', "\\'")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Frames spellings of the paper's query shapes, plus extras exercising every method.
    pub(crate) const FRAMES_QUERIES: &[&str] = &[
        "SpecLineIndex.filter(specObjId == 0x400)",
        "XCRedshift.filter(specObjId == 0x199)",
        "ontime.filter(Month == 9 & Day == 3).groupby(DestState).agg(COUNT(Delay))",
        "ontime.filter(Month == 9 & Day == 3).groupby(DestState).agg()",
        "ontime.select(alias(cast(uniquecarrier, 'varchar'), 'uniquecarrier'))",
        "ontime.filter(canceled == 1).agg(SUM(flights)).having(SUM(flights) > 149 & SUM(flights) < 1354)",
        "t.filter(cust == 'Alice' & country == 'China').groupby(spec_ts).agg(sum(price))",
        "df1.agg(avg(a))",
        "df1.agg(count(b))",
        "Galaxy.select(g.objID).head(10)",
        "T.filter(b > 10).select(a)",
        "(T.filter(b > 10).select(a)).select(*)",
        "ontime.select(carrier).distinct().sort(desc(carrier)).limit(10)",
        "t.select(a).filter(notnull(b) & isin(c, 1, 2, 3) & between(d, 0.5, 2.5))",
        "ontime.agg(alias(COUNT_DISTINCT(carrier), 'c'))",
        "t.filter(~(b == 1) | like(c, 'x%')).select(a)",
        "Galaxy.filter(z > -0.5).select(g.*)",
        "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616).select(d.objID)",
        "t.filter(flag == True & x != None).sort(a, desc(c))",
        "t.select(a + b * 2, FLOOR(distance / 5))",
    ];

    #[test]
    fn render_parses_back_to_the_same_tree() {
        for text in FRAMES_QUERIES {
            let t1 = parse(text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
            let rendered = render(&t1);
            let t2 = parse(&rendered)
                .unwrap_or_else(|e| panic!("reparse of `{rendered}` (from `{text}`): {e}"));
            assert_eq!(t1, t2, "round trip failed for `{text}` -> `{rendered}`");
            assert_eq!(t1.structural_hash(), t2.structural_hash());
        }
    }

    #[test]
    fn render_is_idempotent_modulo_text() {
        for text in FRAMES_QUERIES {
            let t1 = parse(text).unwrap();
            let r1 = render(&t1);
            let r2 = render(&parse(&r1).unwrap());
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn renders_canonical_method_order() {
        let q = parse("t.sort(a).filter(x == 1).groupby(s).agg(SUM(v)).head(5)").unwrap();
        assert_eq!(
            render(&q),
            "t.filter(x == 1).groupby(s).agg(SUM(v)).sort(a).head(5)"
        );
    }

    #[test]
    fn bare_star_projection_renders_as_a_bare_chain() {
        let q = parse("t.filter(x == 1)").unwrap();
        assert_eq!(render(&q), "t.filter(x == 1)");
        // An explicit select(*) normalises away.
        let q = parse("t.select(*).filter(x == 1)").unwrap();
        assert_eq!(render(&q), "t.filter(x == 1)");
    }

    #[test]
    fn sql_parsed_trees_render_to_frames_text() {
        // Rendering is total over trees from the OTHER front-end, and for shared shapes
        // the result round-trips through the frames parser into the identical tree.
        let sql = pi_sql::parse(
            "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
        )
        .unwrap();
        let text = render(&sql);
        assert_eq!(
            text,
            "ontime.filter(Month == 9).groupby(DestState).agg(COUNT(Delay))"
        );
        assert_eq!(parse(&text).unwrap(), sql);
    }

    #[test]
    fn sql_only_constructs_fall_back_to_readable_notation() {
        let case = pi_sql::parse(
            "SELECT (CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END) AS carrier FROM ontime",
        )
        .unwrap();
        let text = render(&case);
        assert!(text.contains("CaseExpr("), "{text}");
        let join = pi_sql::parse("SELECT * FROM a JOIN b ON a.id = b.id").unwrap();
        assert_eq!(render(&join), "a.join(b, a.id == b.id)");
        let tableless = pi_sql::parse("SELECT avg(a)").unwrap();
        assert_eq!(render(&tableless), "df.select(AVG(a))");
    }

    #[test]
    fn fragments_render_as_method_calls() {
        let q = parse("t.filter(x == 1).groupby(s).agg(SUM(v)).sort(desc(a)).head(5)").unwrap();
        let where_clause = q
            .children()
            .iter()
            .find(|c| c.kind() == NodeKind::Where)
            .unwrap();
        assert_eq!(render(where_clause), "filter(x == 1)");
        let gb = q
            .children()
            .iter()
            .find(|c| c.kind() == NodeKind::GroupBy)
            .unwrap();
        assert_eq!(render(gb), "groupby(s)");
        let ob = q
            .children()
            .iter()
            .find(|c| c.kind() == NodeKind::OrderBy)
            .unwrap();
        assert_eq!(render(ob), "sort(desc(a))");
        let limit = q
            .children()
            .iter()
            .find(|c| c.kind() == NodeKind::Limit)
            .unwrap();
        assert_eq!(render(limit), "head(5)");
    }

    #[test]
    fn strings_escape_quotes_and_backslashes() {
        let q = parse("t.filter(name == 'O\\'Brien')").unwrap();
        let text = render(&q);
        assert!(text.contains("'O\\'Brien'"), "{text}");
        assert_eq!(parse(&text).unwrap(), q);
    }

    #[test]
    fn compact_render_collapses_whitespace() {
        let q = parse("t.filter( x  ==  1 )").unwrap();
        assert_eq!(render_compact(&q), "t.filter(x == 1)");
    }
}
