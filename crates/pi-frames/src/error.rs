//! Parse errors for the frames dialect.

use std::fmt;

/// A lexing or parsing failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    /// Creates an error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset into the source text.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at offset {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}
