//! Tokenizer for the method-chain dataframe dialect.
//!
//! The surface syntax is a small python-ish expression language: identifiers, numeric /
//! hex / string literals, method chains (`t.filter(...)`), comparison operators spelled
//! `==` / `!=`, and `&` / `|` / `~` for the boolean connectives.

use crate::error::ParseError;
use std::fmt;

/// One token of frames source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first character (for diagnostics).
    pub offset: usize,
}

/// The kinds of token the frames lexer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier (table, column, method or function name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A hexadecimal literal (`0x400`).
    Hex(i64),
    /// A string literal (single or double quoted, backslash escapes).
    Str(String),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*` (projection star or multiplication, decided by the parser).
    Star,
    /// `;`
    Semicolon,
    /// An operator: `==`, `!=`, `<=`, `>=`, `<`, `>`, `&`, `|`, `~`, `+`, `-`, `/`, `%`.
    Op(String),
}

impl TokenKind {
    /// A short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("number `{i}`"),
            TokenKind::Float(f) => format!("number `{f}`"),
            TokenKind::Hex(h) => format!("number `0x{h:x}`"),
            TokenKind::Str(s) => format!("string `'{s}'`"),
            TokenKind::Dot => "`.`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Semicolon => "`;`".to_string(),
            TokenKind::Op(op) => format!("`{op}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Tokenizes a fragment of frames source text.
pub fn tokenize(text: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let offset = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset,
                });
                i += 1;
            }
            '=' | '!' | '<' | '>' => {
                // `get` (not slicing) so a multibyte character after the operator cannot
                // split a char boundary — hostile log lines must error, never panic.
                let two = text.get(i..i + 2).unwrap_or("");
                let op = match two {
                    "==" | "!=" | "<=" | ">=" => two,
                    _ if c == '<' || c == '>' => &text[i..i + 1],
                    _ => {
                        return Err(ParseError::new(
                            format!("unexpected character `{c}` (comparisons are `==`/`!=`)"),
                            offset,
                        ))
                    }
                };
                tokens.push(Token {
                    kind: TokenKind::Op(op.to_string()),
                    offset,
                });
                i += op.len();
            }
            '&' | '|' | '~' | '+' | '-' | '/' | '%' => {
                tokens.push(Token {
                    kind: TokenKind::Op(c.to_string()),
                    offset,
                });
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut value = String::new();
                i += 1;
                loop {
                    // Decode real chars (not bytes cast to chars): string literals carry
                    // arbitrary UTF-8, and a mangled literal would silently break the
                    // render→parse round-trip and cross-dialect tree identity.
                    match text[i..].chars().next() {
                        None => return Err(ParseError::new("unterminated string literal", offset)),
                        Some(c) if c == quote => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            let escaped = text[i + 1..]
                                .chars()
                                .next()
                                .ok_or_else(|| ParseError::new("unterminated string escape", i))?;
                            value.push(match escaped {
                                'n' => '\n',
                                't' => '\t',
                                other => other, // \' \" \\ and identity for the rest
                            });
                            i += 1 + escaped.len_utf8();
                        }
                        Some(c) => {
                            value.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(value),
                    offset,
                });
            }
            '0' if matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && (bytes[end] as char).is_ascii_hexdigit() {
                    end += 1;
                }
                if end == start {
                    return Err(ParseError::new("empty hex literal", offset));
                }
                let value = i64::from_str_radix(&text[start..end], 16)
                    .map_err(|e| ParseError::new(format!("bad hex literal: {e}"), offset))?;
                tokens.push(Token {
                    kind: TokenKind::Hex(value),
                    offset,
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    let c = bytes[end] as char;
                    if c.is_ascii_digit() {
                        end += 1;
                    } else if c == '.'
                        && !is_float
                        && matches!(bytes.get(end + 1), Some(b) if (*b as char).is_ascii_digit())
                    {
                        // A dot is only part of the number when a digit follows — `1.filter`
                        // would otherwise swallow the method dot.
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let slice = &text[i..end];
                let kind = if is_float {
                    TokenKind::Float(slice.parse().map_err(|e| {
                        ParseError::new(format!("bad float literal `{slice}`: {e}"), offset)
                    })?)
                } else {
                    TokenKind::Int(slice.parse().map_err(|e| {
                        ParseError::new(format!("bad integer literal `{slice}`: {e}"), offset)
                    })?)
                };
                tokens.push(Token { kind, offset });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let c = bytes[end] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(text[i..end].to_string()),
                    offset,
                });
                i = end;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    offset,
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        tokenize(text)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_a_method_chain() {
        let toks = kinds("t.filter(x == 1)");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("filter".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::Op("==".into()),
                TokenKind::Int(1),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn tokenizes_literals() {
        assert_eq!(
            kinds("3.5 0x400 'it\\'s' \"two\" -7"),
            vec![
                TokenKind::Float(3.5),
                TokenKind::Hex(0x400),
                TokenKind::Str("it's".into()),
                TokenKind::Str("two".into()),
                TokenKind::Op("-".into()),
                TokenKind::Int(7),
            ]
        );
    }

    #[test]
    fn a_trailing_method_dot_is_not_swallowed_by_an_int() {
        // `head(1)` after an int literal: the dot belongs to the chain, not the number.
        assert_eq!(
            kinds("1.head"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("head".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators_are_two_chars() {
        assert_eq!(
            kinds("<= >= == != < >"),
            vec![
                TokenKind::Op("<=".into()),
                TokenKind::Op(">=".into()),
                TokenKind::Op("==".into()),
                TokenKind::Op("!=".into()),
                TokenKind::Op("<".into()),
                TokenKind::Op(">".into()),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("t.filter(x = 1)").is_err()); // `=` alone is not an operator
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("0x").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn multibyte_input_errors_without_panicking() {
        // Regression: a multibyte character directly after a comparison operator used to
        // slice mid-char and panic — hostile log lines must hit the skip path, not wedge
        // the session.
        assert!(tokenize("t.filter(x<é)").is_err());
        assert!(tokenize("t.filter(x == ☃)").is_err());
        assert!(tokenize("é").is_err());
    }

    #[test]
    fn string_literals_carry_arbitrary_utf8() {
        // Regression: bytes were cast to chars one at a time, mangling `café` into `cafÃ`
        // and silently breaking cross-dialect tree identity.
        assert_eq!(
            kinds("'café' \"снег ☃\" '\\é'"),
            vec![
                TokenKind::Str("café".into()),
                TokenKind::Str("снег ☃".into()),
                TokenKind::Str("é".into()),
            ]
        );
    }
}
