//! # pi-frames — a method-chain dataframe front-end for Precision Interfaces
//!
//! The paper's tree model is language-agnostic, and "any other front-end (SPARQL, a
//! dataframe API, …)" targeting it is a stated design goal.  This crate is that second
//! front-end: a small pandas-style method-chain dialect
//!
//! ```text
//! ontime.filter(Month == 9 & Day == 3).groupby(DestState).agg(COUNT(Delay))
//! ```
//!
//! with its own lexer, recursive-descent parser and renderer — all targeting the same
//! [`pi_ast`] trees as `pi-sql`.  The load-bearing property is **shape compatibility**:
//! the chain above parses into a tree *identical* to
//! `SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY
//! DestState`, so a mixed SQL + frames log diffs cleanly and mines into one shared
//! interface whose widgets show each option in the dialect its query arrived in.
//!
//! Supported methods: `filter`, `select`, `groupby`, `agg`, `having`, `sort` (with
//! `desc(col)`), `limit`, `head` (TOP-style), `distinct`; pseudo-functions `alias`,
//! `cast`, `isnull`/`notnull`, `isin`/`notin`, `between`, `like`, and `AGG_DISTINCT`
//! spellings for `COUNT(DISTINCT …)`.  Method order is surface syntax only — clauses are
//! assembled in the canonical order both parsers share.
//!
//! ```
//! use pi_ast::Frontend;
//! use pi_frames::FramesFrontend;
//!
//! let q = FramesFrontend
//!     .parse_one("ontime.filter(Month == 9).groupby(DestState).agg(COUNT(Delay))")
//!     .unwrap();
//! let text = FramesFrontend.render(&q);
//! assert_eq!(FramesFrontend.parse_one(&text).unwrap(), q);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod lexer;
mod parser;
mod render;

pub use error::ParseError;
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse, parse_log, Parser};
pub use render::{render, render_compact};

use pi_ast::{Dialect, Frontend, FrontendError, Node};

/// Result alias for parser entry points.
pub type Result<T, E = ParseError> = std::result::Result<T, E>;

/// The frames front-end, as a [`Frontend`] implementation ([`Dialect::FRAMES`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FramesFrontend;

impl Frontend for FramesFrontend {
    fn dialect(&self) -> Dialect {
        Dialect::FRAMES
    }

    fn parse(&self, text: &str) -> std::result::Result<Vec<Node>, FrontendError> {
        parse_log(text)
            .into_iter()
            .map(|r| r.map_err(|e| FrontendError::new(Dialect::FRAMES, e.to_string())))
            .collect()
    }

    fn parse_statements(&self, text: &str) -> Vec<std::result::Result<Node, FrontendError>> {
        parse_log(text)
            .into_iter()
            .map(|r| r.map_err(|e| FrontendError::new(Dialect::FRAMES, e.to_string())))
            .collect()
    }

    fn parse_statements_lossy(
        &self,
        text: &str,
        out: &mut Vec<Node>,
        errors: &mut pi_ast::ErrorSample,
    ) -> usize {
        // Formats the failure message only when the sample will retain it; the steady
        // state on a garbage-heavy trace is a counter bump per bad line.
        let mut skipped = 0;
        for result in parse_log(text) {
            match result {
                Ok(node) => out.push(node),
                Err(e) => {
                    skipped += 1;
                    errors.offer_with(|| FrontendError::new(Dialect::FRAMES, e.to_string()));
                }
            }
        }
        skipped
    }

    fn parse_one(&self, text: &str) -> std::result::Result<Node, FrontendError> {
        // The single-statement parser lexes the whole text, so `;` inside a string
        // literal stays part of the literal — unlike parse/parse_statements, whose
        // statement splitter is a lexical `;` split.
        parse(text).map_err(|e| FrontendError::new(Dialect::FRAMES, e.to_string()))
    }

    fn render(&self, node: &Node) -> String {
        render(node)
    }

    fn render_compact(&self, node: &Node) -> String {
        render_compact(node)
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;

    #[test]
    fn frontend_routes_to_the_crate_entry_points() {
        assert_eq!(FramesFrontend.dialect(), Dialect::FRAMES);
        let text = "t.filter(x == 1); t.filter(x == 2);";
        let all = FramesFrontend.parse(text).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], parse("t.filter(x == 1)").unwrap());
        assert_eq!(FramesFrontend.render(&all[0]), render(&all[0]));
    }

    #[test]
    fn parse_one_keeps_semicolons_inside_string_literals() {
        let q = FramesFrontend.parse_one("t.filter(name == 'a;b')").unwrap();
        assert_eq!(q, parse("t.filter(name == 'a;b')").unwrap());
        assert_eq!(
            FramesFrontend
                .parse_one(&FramesFrontend.render(&q))
                .unwrap(),
            q
        );
    }

    #[test]
    fn statements_fail_individually_with_the_frames_dialect_tag() {
        let results = FramesFrontend.parse_statements("t.filter(x == 1); ???; t");
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok() && results[2].is_ok());
        assert_eq!(results[1].clone().unwrap_err().dialect, Dialect::FRAMES);
    }
}
