//! # precision-interfaces — mining precision interfaces from query logs
//!
//! A from-scratch Rust reproduction of *Mining Precision Interfaces From Query Logs*
//! (Zhang, Zhang, Sellam & Wu, SIGMOD 2019).  The system takes a log of SQL queries from one
//! analysis, mines the recurring structural transformations between them, and generates a
//! tailored interactive interface whose widgets express exactly those transformations.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`ast`] | `pi-ast` | query ASTs, paths, primitive types |
//! | [`sql`] | `pi-sql` | SQL lexer/parser/renderer |
//! | [`diff`] | `pi-diff` | subtree differences (the `diffs` table) |
//! | [`graph`] | `pi-graph` | the interaction graph and its optimisations |
//! | [`widgets`] | `pi-widgets` | widget types, rules, cost functions |
//! | [`core`] | `pi-core` | interface generation, closure, recall, precision |
//! | [`engine`] | `pi-engine` | `exec()` / `render()` over an in-memory catalog |
//! | [`workloads`] | `pi-workloads` | synthetic SDSS / OLAP / ad-hoc query logs |
//! | [`ui`] | `pi-ui` | editable layout + HTML compiler |
//! | [`study`] | `pi-study` | simulated user study + ANOVA |
//!
//! ## Quickstart
//!
//! ```
//! use precision_interfaces::prelude::*;
//!
//! let log = "
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState;
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 8 GROUP BY DestState;
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 3 GROUP BY DestState;
//! ";
//! let generated = PrecisionInterfaces::default().from_sql_log(log).unwrap();
//! assert_eq!(generated.interface.widgets().len(), 1);
//! assert!(generated.interface.expressiveness(&generated.queries) >= 1.0);
//! ```
//!
//! ## Streaming
//!
//! Query logs grow as the analyst works, so the batch entry point above is itself a thin
//! wrapper over a stateful [`Session`](core::Session): feed queries one at a time with
//! `push` / `push_sql` — each append runs only the `O(w)` new alignments the sliding window
//! admits — and take versioned snapshots whenever the interface should refresh.  Snapshots
//! are byte-identical to batch builds of the same prefix (see `examples/live_session.rs`).
//!
//! ```
//! use precision_interfaces::prelude::*;
//!
//! let mut session = Session::new(PiOptions::default());
//! for month in [9, 8, 3] {
//!     session.push_sql(&format!(
//!         "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = {month} GROUP BY DestState"
//!     ));
//! }
//! let snapshot = session.snapshot();
//! assert_eq!(snapshot.version, 3);
//! assert_eq!(snapshot.interface.widgets().len(), 1);
//! ```

#![warn(missing_docs)]

/// Query ASTs, paths and primitive types (`pi-ast`).
pub mod ast {
    pub use pi_ast::*;
}

/// SQL lexing, parsing and rendering (`pi-sql`).
pub mod sql {
    pub use pi_sql::*;
}

/// Subtree differences between queries (`pi-diff`).
pub mod diff {
    pub use pi_diff::*;
}

/// The interaction graph (`pi-graph`).
pub mod graph {
    pub use pi_graph::*;
}

/// Widget types, rules and cost functions (`pi-widgets`).
pub mod widgets {
    pub use pi_widgets::*;
}

/// Interface generation, closure, recall and precision (`pi-core`).
pub mod core {
    pub use pi_core::*;
}

/// The in-memory execution substrate (`pi-engine`).
pub mod engine {
    pub use pi_engine::*;
}

/// Synthetic query-log generators (`pi-workloads`).
pub mod workloads {
    pub use pi_workloads::*;
}

/// Interface layout editing and HTML compilation (`pi-ui`).
pub mod ui {
    pub use pi_ui::*;
}

/// The simulated user study (`pi-study`).
pub mod study {
    pub use pi_study::*;
}

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use pi_ast::{Node, NodeKind, Path};
    pub use pi_core::{GeneratedInterface, Interface, PiOptions, PrecisionInterfaces, Session};
    pub use pi_engine::{exec, render, Catalog};
    pub use pi_sql::{parse, parse_log, render as render_sql};
    pub use pi_ui::{compile_html, EditorLayout};
    pub use pi_widgets::{Widget, WidgetLibrary, WidgetType};
}
