//! # precision-interfaces — mining precision interfaces from query logs
//!
//! A from-scratch Rust reproduction of *Mining Precision Interfaces From Query Logs*
//! (Zhang, Zhang, Sellam & Wu, SIGMOD 2019).  The system takes a log of SQL queries from one
//! analysis, mines the recurring structural transformations between them, and generates a
//! tailored interactive interface whose widgets express exactly those transformations.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`ast`] | `pi-ast` | query ASTs, paths, primitive types, the `Frontend` trait |
//! | [`sql`] | `pi-sql` | SQL front-end (lexer/parser/renderer) |
//! | [`frames`] | `pi-frames` | method-chain dataframe front-end |
//! | [`diff`] | `pi-diff` | subtree differences (the `diffs` table) |
//! | [`graph`] | `pi-graph` | the interaction graph and its optimisations |
//! | [`widgets`] | `pi-widgets` | widget types, rules, cost functions |
//! | [`core`] | `pi-core` | interface generation, closure, recall, precision |
//! | [`engine`] | `pi-engine` | `exec()` / `render()` over an in-memory catalog |
//! | [`workloads`] | `pi-workloads` | synthetic SDSS / OLAP / ad-hoc query logs |
//! | [`ui`] | `pi-ui` | editable layout + HTML compiler |
//! | [`study`] | `pi-study` | simulated user study + ANOVA |
//!
//! ## Quickstart
//!
//! ```
//! use precision_interfaces::prelude::*;
//!
//! let log = "
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState;
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 8 GROUP BY DestState;
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 3 GROUP BY DestState;
//! ";
//! let generated = PrecisionInterfaces::default().from_sql_log(log).unwrap();
//! assert_eq!(generated.interface.widgets().len(), 1);
//! assert!(generated.interface.expressiveness(&generated.queries) >= 1.0);
//! ```
//!
//! ## Streaming
//!
//! Query logs grow as the analyst works, so the batch entry point above is itself a thin
//! wrapper over a stateful [`Session`](core::Session): feed queries one at a time with
//! `push` / `push_text` — each append runs only the `O(w)` new alignments the sliding window
//! admits — and take versioned snapshots whenever the interface should refresh.  Snapshots
//! are byte-identical to batch builds of the same prefix (see `examples/live_session.rs`).
//!
//! ```
//! use precision_interfaces::prelude::*;
//!
//! let mut session = Session::new(PiOptions::default());
//! for month in [9, 8, 3] {
//!     session.push_sql(&format!(
//!         "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = {month} GROUP BY DestState"
//!     ));
//! }
//! let snapshot = session.snapshot();
//! assert_eq!(snapshot.version, 3);
//! assert_eq!(snapshot.interface.widgets().len(), 1);
//! ```
//!
//! For trace-scale logs (10⁵–10⁶ lines), [`Session::push_stream`](core::Session::push_stream)
//! and [`push_stream_tagged`](core::Session::push_stream_tagged) ingest any
//! `(Dialect, &str)` iterator without materialising the log: lines parse in fixed-size
//! chunks through a per-session parse cache (a repeated statement is a hash probe, not a
//! re-parse), unparseable lines are skipped, counted and sampled
//! ([`Session::parse_errors`](core::Session::parse_errors)), and
//! [`Session::memory_footprint`](core::Session::memory_footprint) reports the bytes
//! retained — bounded by the log's *distinct* content, not its length, because distinct
//! trees and interned strings are stored once however often they recur.  Streamed ingest
//! is byte-identical to pushing the same statements one at a time (property-tested):
//!
//! ```
//! use precision_interfaces::prelude::*;
//!
//! let mut session = Session::new(PiOptions::default());
//! let lines = [
//!     (Dialect::SQL, "SELECT a FROM t WHERE x = 1"),
//!     (Dialect::FRAMES, "t.filter(x == 2).select(a)"),
//!     (Dialect::SQL, "%% log noise, skipped and sampled %%"),
//!     (Dialect::SQL, "SELECT a FROM t WHERE x = 1"), // repeat: parse-cache hit
//! ];
//! let appended = session.push_stream_tagged(lines);
//! assert_eq!((appended, session.skipped()), (3, 1));
//! assert_eq!(session.parse_errors().seen(), 1);
//! assert!(session.memory_footprint() > 0);
//! ```
//!
//! ## Mixed front-ends
//!
//! Nothing in the pipeline is SQL-specific: sessions route text through a
//! [`Frontends`](ast::Frontends) registry of [`Frontend`](ast::Frontend) implementations,
//! and the bundled dataframe dialect (`pi-frames`) targets the same tree model as the SQL
//! parser, so the *same analysis* written in either language parses to the *same tree*.  A
//! mixed log therefore mines into one interface, and every widget option remembers — and
//! renders in — the dialect its query arrived in (`examples/mixed_frontends.rs`):
//!
//! ```
//! use precision_interfaces::prelude::*;
//!
//! let mut session = Session::new(PiOptions::default());
//! session.push_sql("SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState");
//! session.push_text_as(
//!     Dialect::FRAMES,
//!     "ontime.filter(Month == 3).groupby(DestState).agg(COUNT(Delay))",
//! );
//! let snapshot = session.snapshot();
//! assert_eq!(snapshot.dialects, vec![Dialect::SQL, Dialect::FRAMES]);
//! assert_eq!(snapshot.interface.widgets().len(), 1); // one shared month widget
//! assert!(snapshot.interface.expressiveness(&snapshot.queries) >= 1.0);
//! ```
//!
//! A session over a *non-SQL default* front-end is one constructor away — untagged
//! `push_text` then parses the dataframe dialect:
//!
//! ```
//! use precision_interfaces::prelude::*;
//!
//! let registry = Frontends::new().with(FramesFrontend).with(SqlFrontend);
//! let mut session = Session::with_frontends(PiOptions::default(), registry);
//! assert_eq!(session.default_dialect(), Dialect::FRAMES);
//! session.push_text("t.filter(x == 1).select(a); t.filter(x == 2).select(a)");
//! assert_eq!(session.snapshot().interface.initial_dialect(), Dialect::FRAMES);
//! ```

#![warn(missing_docs)]

/// Query ASTs, paths and primitive types (`pi-ast`).
pub mod ast {
    pub use pi_ast::*;
}

/// SQL lexing, parsing and rendering (`pi-sql`).
pub mod sql {
    pub use pi_sql::*;
}

/// The method-chain dataframe front-end (`pi-frames`).
pub mod frames {
    pub use pi_frames::*;
}

/// Subtree differences between queries (`pi-diff`).
pub mod diff {
    pub use pi_diff::*;
}

/// The interaction graph (`pi-graph`).
pub mod graph {
    pub use pi_graph::*;
}

/// Widget types, rules and cost functions (`pi-widgets`).
pub mod widgets {
    pub use pi_widgets::*;
}

/// Interface generation, closure, recall and precision (`pi-core`).
pub mod core {
    pub use pi_core::*;
}

/// The in-memory execution substrate (`pi-engine`).
pub mod engine {
    pub use pi_engine::*;
}

/// Synthetic query-log generators (`pi-workloads`).
pub mod workloads {
    pub use pi_workloads::*;
}

/// Interface layout editing and HTML compilation (`pi-ui`).
pub mod ui {
    pub use pi_ui::*;
}

/// The simulated user study (`pi-study`).
pub mod study {
    pub use pi_study::*;
}

/// The multi-tenant HTTP interface service (`pi-server`).
pub mod server {
    pub use pi_server::*;
}

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use pi_ast::{Dialect, Frontend, FrontendError, Frontends, Node, NodeKind, Path};
    pub use pi_core::{
        standard_frontends, GeneratedInterface, Interface, PiOptions, PrecisionInterfaces, Session,
    };
    pub use pi_engine::{exec, render, Catalog};
    pub use pi_frames::FramesFrontend;
    pub use pi_server::{Server, ServerOptions, SessionPool};
    pub use pi_sql::SqlFrontend;
    pub use pi_ui::{compile_html, compile_html_with, EditorLayout};
    pub use pi_widgets::{Widget, WidgetLibrary, WidgetType};
}
